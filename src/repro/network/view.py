"""A stable structural view of campaign jobs for symmetry detection.

A campaign running one engine job per injection port re-executes isomorphic
work whenever the network has renamed copies of the same structure (the 16
Stanford zones).  This module encodes a ``(network, injection port, job
config)`` triple as an entity graph — elements, directional ports, constant
*cells* and string literals related by kind/link/program atoms — and
canonicalizes it with :func:`repro.solver.canonical.canonical_entity_form`.
Jobs with equal canonical fingerprints are isomorphic up to
element/port/constant renaming, and the index-aligned entity orders of the
two forms *are* the bijection, which :class:`SymmetryRenaming` turns into a
report-rewriting function.

Constants are abstracted the same way the solver's linear atom normal form
abstracts variable names: every single-variable comparison/membership atom
is reduced to its *solution region*, the union of all region boundaries
partitions the value axis into cells, and cells with identical coverage
(the same set of program sites constraining them, the same pinned config
values, the same width-domain membership) collapse into one *cell group*
entity.  Programs then reference cell groups instead of raw numbers, so two
zones whose address blocks are renamings of each other encode identically
even when interval-merging gave their FIB constraints different arities.
Satisfiability of any boolean combination of the program's atoms is
determined by which groups exist and which sites cover them — never by how
many raw values a group happens to contain — so equal encodings imply equal
engine behaviour modulo the recorded renaming.

Anything the encoder cannot soundly abstract (multi-variable arithmetic
offsets, opaque ``For`` bodies, unknown-width variables) is encoded
*literally*: it can only split classes, never merge them wrongly.  Raising
:class:`SymmetryUnsupported` makes the campaign fall back to executing
every job directly — symmetry is an optimisation, never a semantics change.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sefl import instructions as si
from repro.sefl.expressions import (
    And,
    Condition,
    ConstantValue,
    Eq,
    Expression,
    Ge,
    Gt,
    Le,
    Lt,
    Minus,
    Ne,
    Not,
    OneOf,
    Or,
    Plus,
    Reference,
    SymbolicValue,
)
from repro.sefl.fields import HeaderField, TagOffset
from repro.network.element import NetworkElement
from repro.solver.canonical import Ent, EntityCanonicalForm, USet, canonical_entity_form

#: Exclusive top of the value axis used for cell construction; safely above
#: any header-field domain (widths are <= 48 bits in practice).
_DOMAIN_TOP = 2 ** 64

_CMP_OPS = {Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge"}
_FLIP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}


class SymmetryUnsupported(RuntimeError):
    """The network contains a construct the symmetry encoder cannot soundly
    abstract; the campaign must execute every job directly."""


# ---------------------------------------------------------------------------
# Expression / variable helpers
# ---------------------------------------------------------------------------


def _linear_form(expr) -> Optional[Tuple[Optional[object], int]]:
    """``expr`` as ``(variable_or_None, offset)`` when it is a constant or a
    single variable plus a constant offset; ``None`` otherwise (symbolic
    values, multi-variable sums — the caller encodes those literally)."""
    if isinstance(expr, bool):
        return None
    if isinstance(expr, int):
        return (None, expr)
    if isinstance(expr, ConstantValue):
        return (None, expr.value)
    if isinstance(expr, Reference):
        return (expr.variable, 0)
    if isinstance(expr, (str, TagOffset)):
        return (expr, 0)
    if isinstance(expr, Plus):
        left = _linear_form(expr.left)
        right = _linear_form(expr.right)
        if left is None or right is None:
            return None
        (lv, lo), (rv, ro) = left, right
        if lv is not None and rv is not None:
            return None
        return (lv if lv is not None else rv, lo + ro)
    if isinstance(expr, Minus):
        left = _linear_form(expr.left)
        right = _linear_form(expr.right)
        if left is None or right is None:
            return None
        (lv, lo), (rv, ro) = left, right
        if rv is not None:
            return None  # -variable is not a renaming-stable shape
        return (lv, lo - ro)
    return None


def _var_width(variable) -> Optional[int]:
    """Bit width of a variable's value domain, ``None`` when unknown (the
    encoder then falls back to literal encoding for atoms over it)."""
    if isinstance(variable, HeaderField):
        return variable.width
    if isinstance(variable, str):
        return 64  # metadata values: effectively unbounded
    return None


def _clamp_region(
    intervals: Iterable[Tuple[int, int]]
) -> Tuple[Tuple[int, int], ...]:
    clamped = []
    for lo, hi in intervals:
        lo = max(lo, 0)
        hi = min(hi, _DOMAIN_TOP - 1)
        if lo <= hi:
            clamped.append((lo, hi))
    return tuple(clamped)


def _cmp_region(op: str, bound: int) -> Tuple[Tuple[int, int], ...]:
    """Solution region of ``var OP bound`` within ``[0, _DOMAIN_TOP)``."""
    if op == "eq":
        return _clamp_region([(bound, bound)])
    if op == "ne":
        return _clamp_region([(0, bound - 1), (bound + 1, _DOMAIN_TOP - 1)])
    if op == "lt":
        return _clamp_region([(0, bound - 1)])
    if op == "le":
        return _clamp_region([(0, bound)])
    if op == "gt":
        return _clamp_region([(bound + 1, _DOMAIN_TOP - 1)])
    if op == "ge":
        return _clamp_region([(bound, _DOMAIN_TOP - 1)])
    raise SymmetryUnsupported(f"unknown comparison op {op!r}")


def collect_constants(instruction) -> set:
    """Every integer constant a SEFL program can write or test — campaigns
    pin these so a symmetry renaming can never move a value the job's own
    configuration refers to (a ``--field IpDst=...`` override must not be
    paired with a different zone's address block)."""
    found: set = set()
    _collect_constants(instruction, found)
    return found


def _collect_constants(node, found: set) -> None:
    if isinstance(node, bool):
        return
    if isinstance(node, int):
        found.add(node)
        return
    if isinstance(node, ConstantValue):
        found.add(node.value)
        return
    if isinstance(node, OneOf):
        for interval in node.values.intervals:
            found.add(interval.lo)
            found.add(interval.hi)
        _collect_constants(node.expression, found)
        return
    if isinstance(node, si.InstructionBlock):
        for child in node.instructions:
            _collect_constants(child, found)
        return
    if isinstance(node, si.If):
        _collect_constants(node.condition, found)
        _collect_constants(node.then_branch, found)
        _collect_constants(node.else_branch, found)
        return
    if isinstance(node, si.Assign):
        _collect_constants(node.expression, found)
        return
    if isinstance(node, si.Constrain):
        _collect_constants(node.condition, found)
        return
    if isinstance(node, si.CreateTag):
        _collect_constants(node.value, found)
        return
    if isinstance(node, (Plus, Minus)):
        _collect_constants(node.left, found)
        _collect_constants(node.right, found)
        return
    if isinstance(node, (Eq, Ne, Lt, Le, Gt, Ge)):
        _collect_constants(node.left, found)
        _collect_constants(node.right, found)
        return
    if isinstance(node, (And, Or)):
        for operand in node.operands:
            _collect_constants(operand, found)
        return
    if isinstance(node, Not):
        _collect_constants(node.operand, found)
        return
    # Allocate sizes, references, symbolic values, tags: no value constants.


class _RegionRef:
    """Placeholder for a coverage site inside a proto-atom; resolved to a
    USet of cell-group entities once the global cell partition is known."""

    __slots__ = ("site",)

    def __init__(self, site: int) -> None:
        self.site = site


# ---------------------------------------------------------------------------
# The view
# ---------------------------------------------------------------------------


class CampaignSymmetryView:
    """Entity-graph encoding of one network (plus campaign-wide pinned
    values), shared by all of a campaign's jobs.

    ``pinned_values`` are integers the job configuration itself references
    (packet templates, ``--field`` overrides): their cells are marked with
    the literal value so no renaming can move them — a job whose answer
    depends on a concrete configured address can only merge with a job whose
    structure treats that exact address identically.
    """

    def __init__(self, network, pinned_values: Iterable[int] = ()) -> None:
        self.network = network
        self._sites: List[Tuple[int, Tuple[Tuple[int, int], ...]]] = []
        self._widths: List[int] = []
        self._pinned = {int(v) for v in pinned_values if int(v) >= 0}
        self._strings: Dict[str, None] = {}
        self._proto_atoms: List = []
        self._encode_network()
        self._atoms, self._group_count = self._resolve_cells()
        self._base_colors, self._fallback_keys = self._entity_tables()
        self._form_cache: Dict[Tuple, EntityCanonicalForm] = {}

    # -- encoding ------------------------------------------------------------

    def _register_site(
        self, width: int, region: Tuple[Tuple[int, int], ...]
    ) -> _RegionRef:
        self._sites.append((width, region))
        if width not in self._widths:
            self._widths.append(width)
        return _RegionRef(len(self._sites) - 1)

    def _string(self, text: str):
        self._strings.setdefault(text, None)
        return Ent(("str", text))

    def _port_token(self, element: str, direction: str, port: str) -> Tuple:
        return ("port", element, direction, port)

    def _var_literal(self, variable) -> Tuple:
        if isinstance(variable, HeaderField):
            return ("field", variable.tag, variable.offset, variable.width, variable.name)
        if isinstance(variable, TagOffset):
            return ("addr", variable.tag, variable.offset)
        if isinstance(variable, int):
            return ("abs", variable)
        if isinstance(variable, str):
            return ("meta", self._string(variable))
        raise SymmetryUnsupported(f"unsupported variable {variable!r}")

    def _expr_literal(self, expr):
        if isinstance(expr, bool):
            raise SymmetryUnsupported(f"boolean in expression position: {expr!r}")
        if isinstance(expr, int):
            return ("k", expr)
        if isinstance(expr, ConstantValue):
            return ("k", expr.value)
        if isinstance(expr, Reference):
            return ("ref", self._var_literal(expr.variable))
        if isinstance(expr, (str, TagOffset)):
            return ("ref", self._var_literal(expr))
        if isinstance(expr, SymbolicValue):
            return ("sym", expr.label, expr.width)
        if isinstance(expr, Plus):
            return ("plus", self._expr_literal(expr.left), self._expr_literal(expr.right))
        if isinstance(expr, Minus):
            return ("minus", self._expr_literal(expr.left), self._expr_literal(expr.right))
        raise SymmetryUnsupported(f"unsupported expression {expr!r}")

    def _encode_condition(self, condition):
        if isinstance(condition, si.Constrain):
            # ``If(Constrain(var, cond), ..)`` spelling: unwrap.
            extra = (
                None
                if condition.variable is None
                else self._var_literal(condition.variable)
            )
            return ("cwrap", self._encode_condition(condition.condition), extra)
        if isinstance(condition, tuple(_CMP_OPS)):
            op = _CMP_OPS[type(condition)]
            left = _linear_form(condition.left)
            right = _linear_form(condition.right)
            if left is not None and right is not None:
                (lv, lo), (rv, ro) = left, right
                if lv is None and rv is None:
                    return ("cmpkk", op, lo, ro)
                if (lv is None) != (rv is None):
                    if lv is not None:
                        variable, bound = lv, ro - lo
                        oriented = op
                    else:
                        variable, bound = rv, lo - ro
                        oriented = _FLIP[op]
                    width = _var_width(variable)
                    if width is not None:
                        ref = self._register_site(width, _cmp_region(oriented, bound))
                        return ("cmp1", self._var_literal(variable), ref)
            # Multi-variable / symbolic / unknown-width: literal (splits only).
            return (
                "cmpL",
                op,
                self._expr_literal(condition.left),
                self._expr_literal(condition.right),
            )
        if isinstance(condition, OneOf):
            linear = _linear_form(condition.expression)
            if linear is not None and linear[0] is not None:
                variable, offset = linear
                width = _var_width(variable)
                if width is not None:
                    region = _clamp_region(
                        (interval.lo - offset, interval.hi - offset)
                        for interval in condition.values.intervals
                    )
                    ref = self._register_site(width, region)
                    return ("member", self._var_literal(variable), ref)
            values = tuple(
                (interval.lo, interval.hi) for interval in condition.values.intervals
            )
            return ("memberL", self._expr_literal(condition.expression), values)
        if isinstance(condition, (And, Or)):
            tag = "and" if isinstance(condition, And) else "or"
            return (tag, tuple(self._encode_condition(op) for op in condition.operands))
        if isinstance(condition, Not):
            return ("not", self._encode_condition(condition.operand))
        raise SymmetryUnsupported(f"unsupported condition {condition!r}")

    def _encode_instruction(self, instruction, element: NetworkElement):
        if isinstance(instruction, si.NoOp):
            return ("noop",)
        if isinstance(instruction, si.InstructionBlock):
            return (
                "block",
                tuple(
                    self._encode_instruction(child, element)
                    for child in instruction.instructions
                ),
            )
        if isinstance(instruction, si.Forward):
            name = element.resolve_output_port(instruction.port)
            if element.has_output_port(name):
                return ("fwd", Ent(self._port_token(element.name, "out", name)))
            return ("fwd!", name)
        if isinstance(instruction, si.Fork):
            targets = []
            stray = []
            for port in instruction.ports:
                name = element.resolve_output_port(port)
                if element.has_output_port(name):
                    targets.append(Ent(self._port_token(element.name, "out", name)))
                else:
                    stray.append(name)
            # Fork semantics are order-independent for everything the
            # campaign aggregates (sorted loops, counted statuses), so the
            # children form an unordered collection — declaration-order
            # differences between renamed zones must not split classes.
            return ("fork", USet(targets), tuple(sorted(stray)))
        if isinstance(instruction, si.Fail):
            return ("fail", self._string(instruction.message))
        if isinstance(instruction, si.Constrain):
            extra = (
                None
                if instruction.variable is None
                else self._var_literal(instruction.variable)
            )
            return ("constrain", self._encode_condition(instruction.condition), extra)
        if isinstance(instruction, si.If):
            return (
                "if",
                self._encode_condition(instruction.condition),
                self._encode_instruction(instruction.then_branch, element),
                self._encode_instruction(instruction.else_branch, element),
            )
        if isinstance(instruction, si.Allocate):
            return (
                "alloc",
                self._var_literal(instruction.variable),
                instruction.size,
                instruction.visibility,
            )
        if isinstance(instruction, si.Deallocate):
            return ("dealloc", self._var_literal(instruction.variable))
        if isinstance(instruction, si.Assign):
            return (
                "assign",
                self._var_literal(instruction.variable),
                self._encode_assigned(instruction.expression, instruction.variable),
            )
        if isinstance(instruction, si.CreateTag):
            return ("ctag", instruction.name, instruction.value)
        if isinstance(instruction, si.DestroyTag):
            return ("dtag", instruction.name)
        if isinstance(instruction, si.For):
            # Opaque closure: pin the element to itself by name.  Same-name
            # pairing is the identity, so same-network jobs still merge.
            return ("opaque-for", element.name)
        raise SymmetryUnsupported(f"unsupported instruction {instruction!r}")

    def _encode_assigned(self, expr, variable):
        """The value written by an Assign.  A pure constant becomes a
        coverage site over the *assigned* variable's axis (the written value
        participates in later membership tests exactly like a FIB constant);
        anything else is literal."""
        linear = _linear_form(expr)
        if linear is not None and linear[0] is None:
            width = _var_width(variable) or 64
            return ("valS", self._register_site(width, _clamp_region([(linear[1], linear[1])])))
        return ("valL", self._expr_literal(expr))

    def _encode_network(self) -> None:
        network = self.network
        for element in network:
            elem_ent = Ent(("elem", element.name))
            self._proto_atoms.append(("element", elem_ent, element.kind))
            for port in element.input_ports:
                token = self._port_token(element.name, "in", port)
                self._proto_atoms.append(("port", Ent(token), "in", elem_ent))
                self._proto_atoms.append(
                    (
                        "program",
                        Ent(token),
                        "in",
                        self._encode_instruction(element.input_program(port), element),
                    )
                )
            for port in element.output_ports:
                token = self._port_token(element.name, "out", port)
                self._proto_atoms.append(("port", Ent(token), "out", elem_ent))
                self._proto_atoms.append(
                    (
                        "program",
                        Ent(token),
                        "out",
                        self._encode_instruction(element.output_program(port), element),
                    )
                )
        for link in network.links:
            src, dst = link.source, link.destination
            src_ok = network.has_element(src.element) and network.element(
                src.element
            ).has_output_port(src.port)
            dst_ok = network.has_element(dst.element) and network.element(
                dst.element
            ).has_input_port(dst.port)
            self._proto_atoms.append(
                (
                    "link",
                    Ent(self._port_token(src.element, "out", src.port))
                    if src_ok
                    else ("dangling", src.element, src.port),
                    Ent(self._port_token(dst.element, "in", dst.port))
                    if dst_ok
                    else ("dangling", dst.element, dst.port),
                )
            )

    # -- cells ----------------------------------------------------------------

    def _resolve_cells(self) -> Tuple[List, int]:
        """Partition the value axis into cells, group cells by coverage, and
        replace every :class:`_RegionRef` with a USet of cell-group
        entities."""
        from bisect import bisect_left

        boundaries = {0, _DOMAIN_TOP}
        for _, region in self._sites:
            for lo, hi in region:
                boundaries.add(lo)
                boundaries.add(hi + 1)
        for value in self._pinned:
            if value < _DOMAIN_TOP:
                boundaries.add(value)
                boundaries.add(value + 1)
        bounds = sorted(b for b in boundaries if 0 <= b <= _DOMAIN_TOP)
        cells = [(bounds[i], bounds[i + 1] - 1) for i in range(len(bounds) - 1)]

        masks = [0] * len(cells)
        for bit, (_, region) in enumerate(self._sites):
            flag = 1 << bit
            for lo, hi in region:
                start = bisect_left(bounds, lo)
                stop = bisect_left(bounds, hi + 1)
                for index in range(start, stop):
                    masks[index] |= flag

        widths = sorted(self._widths)
        group_ids: Dict[Tuple, int] = {}
        site_groups: List[List[int]] = [[] for _ in self._sites]
        group_atoms: List = []
        for index, (lo, hi) in enumerate(cells):
            mask = masks[index]
            pin = lo if (lo == hi and lo in self._pinned) else None
            if mask == 0 and pin is None:
                continue
            covered_widths = tuple(w for w in widths if hi < (1 << w))
            key = (mask, pin, covered_widths)
            if key not in group_ids:
                gid = len(group_ids)
                group_ids[key] = gid
                group_atoms.append(("cells", Ent(("cells", gid)), pin, covered_widths))
                bit = 0
                remaining = mask
                while remaining:
                    if remaining & 1:
                        site_groups[bit].append(gid)
                    remaining >>= 1
                    bit += 1

        def resolve(node):
            if isinstance(node, _RegionRef):
                return USet(
                    Ent(("cells", gid)) for gid in site_groups[node.site]
                )
            if isinstance(node, Ent) or not isinstance(node, tuple):
                return node
            return tuple(resolve(item) for item in node)

        atoms = [resolve(atom) for atom in self._proto_atoms]
        atoms.extend(group_atoms)
        return atoms, len(group_ids)

    # -- canonical forms -------------------------------------------------------

    def _entity_tables(self) -> Tuple[Dict, Dict]:
        base_colors: Dict = {}
        fallback_keys: Dict = {}
        for element in self.network:
            token = ("elem", element.name)
            base_colors[token] = ("E", element.kind)
            fallback_keys[token] = token
            for port in element.input_ports:
                ptoken = self._port_token(element.name, "in", port)
                base_colors[ptoken] = ("P", "in")
                fallback_keys[ptoken] = ptoken
            for port in element.output_ports:
                ptoken = self._port_token(element.name, "out", port)
                base_colors[ptoken] = ("P", "out")
                fallback_keys[ptoken] = ptoken
        for gid in range(self._group_count):
            token = ("cells", gid)
            base_colors[token] = ("C",)
            fallback_keys[token] = token
        for text in self._strings:
            token = ("str", text)
            base_colors[token] = ("S",)
            fallback_keys[token] = token
        return base_colors, fallback_keys

    def job_form(
        self, element: str, port: str, config_digest: str
    ) -> EntityCanonicalForm:
        """Canonical form of one job: the shared network atoms plus an
        injection mark and the job-config digest (jobs with different
        configurations can never share a class)."""
        key = (element, port, config_digest)
        cached = self._form_cache.get(key)
        if cached is not None:
            return cached
        elem_token = ("elem", element)
        port_token = self._port_token(element, "in", port)
        if elem_token not in self._base_colors or port_token not in self._base_colors:
            raise SymmetryUnsupported(f"unknown injection port {element}:{port}")
        atoms = list(self._atoms)
        atoms.append(("inject", Ent(elem_token), Ent(port_token), config_digest))
        form = canonical_entity_form(atoms, self._base_colors, self._fallback_keys)
        self._form_cache[key] = form
        return form


def config_digest(payload) -> str:
    """Stable digest of a job's behaviour-relevant configuration."""
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The recorded bijection
# ---------------------------------------------------------------------------

_BOUNDARY_BEFORE = r"(?<![A-Za-z0-9_.-])"
_BOUNDARY_AFTER = r"(?![A-Za-z0-9_.-])"


class SymmetryRenaming:
    """The explicit bijection between a class representative's job and a
    member's job, applied to report artifacts as one simultaneous text
    substitution (longest key first, so swap renamings are safe)."""

    def __init__(
        self,
        element_map: Dict[str, str],
        port_map: Dict[Tuple[str, str, str], str],
        text_pairs: Dict[str, str],
    ) -> None:
        self.element_map = dict(element_map)
        self.port_map = dict(port_map)
        pairs = {key: value for key, value in text_pairs.items() if key != value}
        for (elem, _direction, port), mapped_port in self.port_map.items():
            mapped_elem = self.element_map.get(elem, elem)
            compound = f"{elem}:{port}"
            mapped = f"{mapped_elem}:{mapped_port}"
            if compound != mapped:
                pairs[compound] = mapped
        for elem, mapped_elem in self.element_map.items():
            if elem != mapped_elem:
                pairs.setdefault(elem, mapped_elem)
        self.text_pairs = pairs
        if pairs:
            alternation = "|".join(
                _BOUNDARY_BEFORE + re.escape(key) + _BOUNDARY_AFTER
                for key in sorted(pairs, key=lambda k: (-len(k), k))
            )
            self._pattern: Optional[re.Pattern] = re.compile(alternation)
        else:
            self._pattern = None

    def map_text(self, text: str) -> str:
        if self._pattern is None or not text:
            return text
        return self._pattern.sub(lambda m: self.text_pairs[m.group(0)], text)

    def map_port_key(self, key: str) -> str:
        return self.map_text(key)


def _pair_programs(
    rep_elem: NetworkElement,
    member_elem: NetworkElement,
    rep_prog,
    member_prog,
    pairs: Dict[str, str],
) -> None:
    """Lockstep walk of two paired programs, recording repr/message pairs at
    every node the engine might quote in a report string.  Only block and
    branch structure is descended — equal canonical encodings guarantee the
    shapes line up; any mismatch aborts the renaming (the member then runs
    directly)."""
    if type(rep_prog) is not type(member_prog):
        raise SymmetryUnsupported(
            f"paired programs diverge: {type(rep_prog).__name__} vs "
            f"{type(member_prog).__name__}"
        )
    if isinstance(rep_prog, si.InstructionBlock):
        if len(rep_prog.instructions) != len(member_prog.instructions):
            raise SymmetryUnsupported("paired blocks have different lengths")
        for rep_child, member_child in zip(
            rep_prog.instructions, member_prog.instructions
        ):
            _pair_programs(rep_elem, member_elem, rep_child, member_child, pairs)
        return
    if isinstance(rep_prog, si.If):
        _record_pair(repr(rep_prog.condition), repr(member_prog.condition), pairs)
        _pair_programs(
            rep_elem, member_elem, rep_prog.then_branch, member_prog.then_branch, pairs
        )
        _pair_programs(
            rep_elem, member_elem, rep_prog.else_branch, member_prog.else_branch, pairs
        )
        return
    if isinstance(rep_prog, si.For):
        return  # closures: only ever paired with themselves
    if isinstance(rep_prog, si.Fail):
        _record_pair(rep_prog.message, member_prog.message, pairs)
        return
    if isinstance(rep_prog, si.Constrain):
        _record_pair(repr(rep_prog.condition), repr(member_prog.condition), pairs)
        return
    _record_pair(repr(rep_prog), repr(member_prog), pairs)


def _record_pair(rep_text: str, member_text: str, pairs: Dict[str, str]) -> None:
    if rep_text == member_text:
        return
    existing = pairs.get(rep_text)
    if existing is not None and existing != member_text:
        raise SymmetryUnsupported(
            f"inconsistent text pairing for {rep_text!r}: "
            f"{existing!r} vs {member_text!r}"
        )
    pairs[rep_text] = member_text


def build_renaming(
    view: CampaignSymmetryView,
    rep_form: EntityCanonicalForm,
    member_form: EntityCanonicalForm,
) -> SymmetryRenaming:
    """Turn two equal-fingerprint canonical forms over one view into the
    explicit renaming representative -> member."""
    if rep_form.fingerprint != member_form.fingerprint:
        raise SymmetryUnsupported("forms are not in the same symmetry class")
    if len(rep_form.entities) != len(member_form.entities):
        raise SymmetryUnsupported("forms disagree on entity count")
    element_map: Dict[str, str] = {}
    port_map: Dict[Tuple[str, str, str], str] = {}
    text_pairs: Dict[str, str] = {}
    for rep_token, member_token in zip(rep_form.entities, member_form.entities):
        kind = rep_token[0]
        if kind != member_token[0]:
            raise SymmetryUnsupported(
                f"paired entities of different kinds: {rep_token!r} vs "
                f"{member_token!r}"
            )
        if kind == "elem":
            element_map[rep_token[1]] = member_token[1]
        elif kind == "port":
            _, _elem, direction, port = rep_token
            if direction != member_token[2]:
                raise SymmetryUnsupported("paired ports of different directions")
            port_map[(rep_token[1], direction, port)] = member_token[3]
        elif kind == "str":
            _record_pair(rep_token[1], member_token[1], text_pairs)
    network = view.network
    for rep_name, member_name in element_map.items():
        mapped_elem_of_rep_ports = {
            member_elem_name
            for (elem, _d, _p), _mp in port_map.items()
            if elem == rep_name
            for member_elem_name in (element_map[elem],)
        }
        if mapped_elem_of_rep_ports - {member_name}:
            raise SymmetryUnsupported("port map crosses element boundaries")
        rep_elem = network.element(rep_name)
        member_elem = network.element(member_name)
        if rep_elem.kind != member_elem.kind:
            raise SymmetryUnsupported("paired elements of different kinds")
        for port in rep_elem.input_ports:
            member_port = port_map.get((rep_name, "in", port))
            if member_port is None:
                raise SymmetryUnsupported(f"unpaired input port {rep_name}:{port}")
            _pair_programs(
                rep_elem,
                member_elem,
                rep_elem.input_program(port),
                member_elem.input_program(member_port),
                text_pairs,
            )
        for port in rep_elem.output_ports:
            member_port = port_map.get((rep_name, "out", port))
            if member_port is None:
                raise SymmetryUnsupported(f"unpaired output port {rep_name}:{port}")
            _pair_programs(
                rep_elem,
                member_elem,
                rep_elem.output_program(port),
                member_elem.output_program(member_port),
                text_pairs,
            )
    port_name_map = {
        (elem, direction, port): member_port
        for (elem, direction, port), member_port in port_map.items()
    }
    return SymmetryRenaming(element_map, port_name_map, text_pairs)


def elements_reaching(network, targets: Iterable[str]) -> set:
    """Every element name that can reach any of ``targets`` along the
    network's link graph (the targets themselves included).

    This is the element-level neighbourhood relation the symmetry view's
    entity graph encodes structurally, exposed as a plain reverse closure
    for delta verification: an injection port's answer can only depend on
    elements its element reaches, so a port whose element is *not* in the
    closure of the touched set is provably unaffected by the touch.  The
    walk runs over link endpoints *by name* — dangling links included — and
    ignores programs entirely, so it is a sound over-approximation of
    anything the engine (which only follows links) can traverse.
    """
    reverse: Dict[str, set] = {}
    for link in network.links:
        reverse.setdefault(link.destination.element, set()).add(link.source.element)
    seen = set(targets)
    frontier = list(seen)
    while frontier:
        node = frontier.pop()
        for upstream in reverse.get(node, ()):
            if upstream not in seen:
                seen.add(upstream)
                frontier.append(upstream)
    return seen
