"""Network topology model: elements, ports and unidirectional links.

A network is a set of :class:`NetworkElement` boxes.  Each element has named
input and output ports, and each port carries a SEFL program.  Links are
unidirectional, from an output port of one element to an input port of
another — bidirectional connectivity requires two links, exactly as in §5 of
the paper.
"""

from repro.network.element import NetworkElement, WILDCARD_PORT
from repro.network.ports import PortId, input_port, output_port
from repro.network.topology import Link, Network

__all__ = [
    "Link",
    "Network",
    "NetworkElement",
    "PortId",
    "WILDCARD_PORT",
    "input_port",
    "output_port",
]
