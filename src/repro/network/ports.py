"""Port naming helpers.

Ports are identified by ``(element name, port name)`` pairs; the helpers
below build the conventional names used by the generated models (``in0``,
``out3``, …) and global port identifiers used in traces and reports
(``"switch1:in0"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class PortId:
    """Fully-qualified port identifier."""

    element: str
    port: str

    def __str__(self) -> str:
        return f"{self.element}:{self.port}"


def input_port(index: Union[int, str]) -> str:
    """Conventional input-port name for an index (``0`` → ``"in0"``)."""
    if isinstance(index, str):
        return index
    return f"in{index}"


def output_port(index: Union[int, str]) -> str:
    """Conventional output-port name for an index (``0`` → ``"out0"``)."""
    if isinstance(index, str):
        return index
    return f"out{index}"
