"""Network elements: boxes with per-port SEFL programs."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.sefl.instructions import Instruction, NoOp

# The paper writes ``InputPort(*)`` for "any input port"; models use this key
# to attach the same program to every input port.
WILDCARD_PORT = "*"


class NetworkElement:
    """A network box: named input/output ports, each with a SEFL program.

    Providing a model for an element means "specifying the number of inputs
    and output ports and associating a set of SEFL instructions to each
    port" (§5).  Ports without an explicit program run :class:`NoOp`.
    """

    def __init__(
        self,
        name: str,
        input_ports: Optional[Iterable[str]] = None,
        output_ports: Optional[Iterable[str]] = None,
        kind: str = "generic",
    ) -> None:
        self.name = name
        self.kind = kind
        self._input_ports: List[str] = list(input_ports or [])
        self._output_ports: List[str] = list(output_ports or [])
        self._input_programs: Dict[str, Instruction] = {}
        self._output_programs: Dict[str, Instruction] = {}

    # -- port management --------------------------------------------------------

    @property
    def input_ports(self) -> List[str]:
        return list(self._input_ports)

    @property
    def output_ports(self) -> List[str]:
        return list(self._output_ports)

    def add_input_port(self, port: str) -> None:
        if port not in self._input_ports:
            self._input_ports.append(port)

    def add_output_port(self, port: str) -> None:
        if port not in self._output_ports:
            self._output_ports.append(port)

    def has_input_port(self, port: str) -> bool:
        return port in self._input_ports

    def has_output_port(self, port: str) -> bool:
        return port in self._output_ports

    # -- program management -------------------------------------------------------

    def set_input_program(self, port: str, program: Instruction) -> None:
        """Attach ``program`` to an input port (``"*"`` for all inputs)."""
        if port != WILDCARD_PORT:
            self.add_input_port(port)
        self._input_programs[port] = program

    def set_output_program(self, port: str, program: Instruction) -> None:
        """Attach ``program`` to an output port (``"*"`` for all outputs)."""
        if port != WILDCARD_PORT:
            self.add_output_port(port)
        self._output_programs[port] = program

    def input_program(self, port: str) -> Instruction:
        if port in self._input_programs:
            return self._input_programs[port]
        if WILDCARD_PORT in self._input_programs:
            return self._input_programs[WILDCARD_PORT]
        return NoOp()

    def output_program(self, port: str) -> Instruction:
        if port in self._output_programs:
            return self._output_programs[port]
        if WILDCARD_PORT in self._output_programs:
            return self._output_programs[WILDCARD_PORT]
        return NoOp()

    def resolve_output_port(self, port: Union[int, str]) -> str:
        """Resolve a ``Forward`` / ``Fork`` target to an output-port name.

        Integers index into the element's output-port list in declaration
        order, so models can say ``Forward(1)`` as the paper's
        ``Forward(OutputPort(1))``.
        """
        if isinstance(port, int):
            if 0 <= port < len(self._output_ports):
                return self._output_ports[port]
            return f"out{port}"
        return port

    def __repr__(self) -> str:
        return (
            f"NetworkElement({self.name!r}, kind={self.kind!r}, "
            f"in={self._input_ports}, out={self._output_ports})"
        )
