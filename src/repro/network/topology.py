"""Network container: elements plus unidirectional links."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.errors import ModelError
from repro.network.element import NetworkElement
from repro.network.ports import PortId


@dataclass(frozen=True)
class Link:
    """A unidirectional link from an output port to an input port."""

    source: PortId
    destination: PortId

    def __str__(self) -> str:
        return f"{self.source} -> {self.destination}"


PortSpec = Union[PortId, Tuple[str, str]]


def _as_port_id(spec: PortSpec) -> PortId:
    if isinstance(spec, PortId):
        return spec
    element, port = spec
    return PortId(element, port)


class Network:
    """A set of network elements wired together with unidirectional links."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._elements: Dict[str, NetworkElement] = {}
        self._links: Dict[Tuple[str, str], PortId] = {}

    # -- elements ---------------------------------------------------------------

    def add_element(self, element: NetworkElement) -> NetworkElement:
        if element.name in self._elements:
            raise ModelError(f"duplicate element name {element.name!r}")
        self._elements[element.name] = element
        return element

    def add_elements(self, *elements: NetworkElement) -> None:
        for element in elements:
            self.add_element(element)

    def element(self, name: str) -> NetworkElement:
        if name not in self._elements:
            raise ModelError(f"unknown element {name!r}")
        return self._elements[name]

    def has_element(self, name: str) -> bool:
        return name in self._elements

    @property
    def elements(self) -> List[NetworkElement]:
        return list(self._elements.values())

    def __iter__(self) -> Iterator[NetworkElement]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    # -- links ------------------------------------------------------------------

    def add_link(self, source: PortSpec, destination: PortSpec) -> Link:
        """Connect an output port to an input port (unidirectional)."""
        src = _as_port_id(source)
        dst = _as_port_id(destination)
        self.element(src.element)  # raise ModelError on unknown elements
        self.element(dst.element)
        return self.add_link_permissive(src, dst)

    def add_duplex_link(
        self,
        element_a: str,
        element_b: str,
        a_out: str,
        a_in: str,
        b_out: str,
        b_in: str,
    ) -> Tuple[Link, Link]:
        """Connect two elements in both directions with one call."""
        forward = self.add_link((element_a, a_out), (element_b, b_in))
        backward = self.add_link((element_b, b_out), (element_a, a_in))
        return forward, backward

    def add_link_permissive(self, source: PortSpec, destination: PortSpec) -> Link:
        """Record a link even when it references elements this network does
        not contain.

        The topology parser uses this so a typo'd element name in a link
        line becomes a :meth:`validate` finding (surfaced as a CLI warning)
        instead of a hard parse error.  Ports are still declared on the
        elements that do exist; duplicate source ports still raise.
        """
        src = _as_port_id(source)
        dst = _as_port_id(destination)
        src_element = self._elements.get(src.element)
        if src_element is not None:
            src_element.add_output_port(src.port)
        dst_element = self._elements.get(dst.element)
        if dst_element is not None:
            dst_element.add_input_port(dst.port)
        key = (src.element, src.port)
        if key in self._links:
            raise ModelError(f"output port {src} is already linked")
        self._links[key] = dst
        return Link(src, dst)

    def link_from(self, element: str, output_port: str) -> Optional[PortId]:
        """The input port the given output port is wired to, if any."""
        return self._links.get((element, output_port))

    @property
    def links(self) -> List[Link]:
        return [
            Link(PortId(element, port), destination)
            for (element, port), destination in self._links.items()
        ]

    def port_count(self) -> int:
        """Total number of declared ports (for Figure-11-style reporting)."""
        return sum(
            len(e.input_ports) + len(e.output_ports) for e in self._elements.values()
        )

    # -- validation ----------------------------------------------------------------

    def validate(self) -> List[str]:
        """Return a list of structural problems (empty when the model is sound)."""
        problems = []
        for (element, port), destination in self._links.items():
            src = self._elements.get(element)
            if src is None:
                problems.append(f"link from unknown element {element!r}")
                continue
            if not src.has_output_port(port):
                problems.append(f"link from undeclared output port {element}:{port}")
            dst = self._elements.get(destination.element)
            if dst is None:
                problems.append(f"link to unknown element {destination.element!r}")
            elif not dst.has_input_port(destination.port):
                problems.append(f"link to undeclared input port {destination}")
        return problems

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, elements={len(self._elements)}, "
            f"links={len(self._links)})"
        )
