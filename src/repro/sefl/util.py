"""Helpers for IP / MAC literals and prefix notation.

The paper's examples use calls such as ``ipToNumber("192.168.1.1")``; these
are the Python equivalents.
"""

from __future__ import annotations

from typing import Tuple


def ip_to_number(address: str) -> int:
    """Convert dotted-quad IPv4 notation to its 32-bit integer value."""
    parts = address.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def number_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad IPv4 notation."""
    if not 0 <= value < (1 << 32):
        raise ValueError(f"value out of IPv4 range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_number(address: str) -> int:
    """Convert ``aa:bb:cc:dd:ee:ff`` (or dotted CISCO ``aabb.ccdd.eeff``)
    notation to a 48-bit integer."""
    cleaned = address.strip().lower().replace("-", ":").replace(".", "")
    if ":" in cleaned:
        parts = cleaned.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address: {address!r}")
        digits = "".join(p.zfill(2) for p in parts)
    else:
        digits = cleaned
    if len(digits) != 12:
        raise ValueError(f"malformed MAC address: {address!r}")
    return int(digits, 16)


def number_to_mac(value: int) -> str:
    """Convert a 48-bit integer to colon-separated MAC notation."""
    if not 0 <= value < (1 << 48):
        raise ValueError(f"value out of MAC range: {value}")
    digits = f"{value:012x}"
    return ":".join(digits[i : i + 2] for i in range(0, 12, 2))


def parse_prefix(prefix: str) -> Tuple[int, int]:
    """Parse ``"10.0.0.0/8"`` into ``(address, prefix_length)``."""
    if "/" in prefix:
        address, _, length = prefix.partition("/")
        plen = int(length)
    else:
        address, plen = prefix, 32
    if not 0 <= plen <= 32:
        raise ValueError(f"malformed prefix: {prefix!r}")
    return ip_to_number(address), plen
