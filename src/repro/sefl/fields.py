"""Packet addressing: tags, absolute addresses and header-field shorthands.

SEFL models the packet as a flat bit-addressed memory (Figure 6 of the
paper).  Header fields are variables allocated at absolute bit offsets.  To
make layering possible, models define *tags* (L2, L3, L4, Start, End, …) and
address fields relative to a tag plus a fixed offset — ``Tag("L3") + 96`` is
the IP source address.  This module provides that addressing syntax plus the
shorthands the paper uses (``IpSrc``, ``TcpDst``, …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union


@dataclass(frozen=True)
class TagOffset:
    """An address expressed as ``Tag(name) + offset`` (offset in bits)."""

    tag: str
    offset: int = 0

    def __add__(self, bits: int) -> "TagOffset":
        return TagOffset(self.tag, self.offset + bits)

    def __sub__(self, bits: int) -> "TagOffset":
        return TagOffset(self.tag, self.offset - bits)

    def __repr__(self) -> str:
        if self.offset == 0:
            return f'Tag("{self.tag}")'
        sign = "+" if self.offset >= 0 else "-"
        return f'Tag("{self.tag}"){sign}{abs(self.offset)}'


def Tag(name: str) -> TagOffset:
    """Reference a tag by name, as in the paper's ``Tag("L3") + 96``."""
    return TagOffset(name, 0)


@dataclass(frozen=True)
class HeaderField(TagOffset):
    """A named header field: a tag-relative address with a width and a name.

    Using a field both documents the model and lets the engine check the
    access width against the allocation (header memory safety).
    """

    width: int = 32
    name: str = ""

    def __repr__(self) -> str:
        return self.name or super().__repr__()


# A "variable" in SEFL instructions is one of:
#   * a string          -> metadata key (no alignment rules),
#   * an integer        -> absolute header bit address,
#   * a TagOffset       -> tag-relative header address,
#   * a HeaderField     -> named tag-relative address with width.
VariableLike = Union[str, int, TagOffset, HeaderField]


# ---------------------------------------------------------------------------
# Standard header layouts (bit offsets), mirroring Figure 6.
# ---------------------------------------------------------------------------

ETHER_HEADER_BITS = 112
IP_HEADER_BITS = 160
TCP_HEADER_BITS = 160
UDP_HEADER_BITS = 64
ICMP_HEADER_BITS = 64
VLAN_TAG_BITS = 32

# Ethernet (relative to the L2 tag).
EtherDst = HeaderField("L2", 0, 48, "EtherDst")
EtherSrc = HeaderField("L2", 48, 48, "EtherSrc")
EtherType = HeaderField("L2", 96, 16, "EtherType")

# 802.1Q VLAN tag (relative to the VLAN tag marker, inserted after EtherSrc).
VlanTpid = HeaderField("VLAN", 0, 16, "VlanTpid")
VlanId = HeaderField("VLAN", 16, 16, "VlanId")

# IPv4 (relative to the L3 tag); IpSrc at L3+96 matches the paper's example.
IpVersion = HeaderField("L3", 0, 4, "IpVersion")
IpIhl = HeaderField("L3", 4, 4, "IpIhl")
IpTos = HeaderField("L3", 8, 8, "IpTos")
IpLength = HeaderField("L3", 16, 16, "IpLength")
IpId = HeaderField("L3", 32, 16, "IpId")
IpFragment = HeaderField("L3", 48, 16, "IpFragment")
IpTtl = HeaderField("L3", 64, 8, "IpTtl")
IpProto = HeaderField("L3", 72, 8, "IpProto")
IpChecksum = HeaderField("L3", 80, 16, "IpChecksum")
IpSrc = HeaderField("L3", 96, 32, "IpSrc")
IpDst = HeaderField("L3", 128, 32, "IpDst")

# TCP (relative to the L4 tag).
TcpSrc = HeaderField("L4", 0, 16, "TcpSrc")
TcpDst = HeaderField("L4", 16, 16, "TcpDst")
TcpSeq = HeaderField("L4", 32, 32, "TcpSeq")
TcpAck = HeaderField("L4", 64, 32, "TcpAck")
TcpFlags = HeaderField("L4", 96, 16, "TcpFlags")
TcpWindow = HeaderField("L4", 112, 16, "TcpWindow")
TcpChecksum = HeaderField("L4", 128, 16, "TcpChecksum")
TcpUrgent = HeaderField("L4", 144, 16, "TcpUrgent")
TcpPayload = HeaderField("Payload", 0, 32, "TcpPayload")

# UDP (relative to the L4 tag).
UdpSrc = HeaderField("L4", 0, 16, "UdpSrc")
UdpDst = HeaderField("L4", 16, 16, "UdpDst")
UdpLength = HeaderField("L4", 32, 16, "UdpLength")
UdpChecksum = HeaderField("L4", 48, 16, "UdpChecksum")

# ICMP (relative to the L4 tag).
IcmpType = HeaderField("L4", 0, 8, "IcmpType")
IcmpCode = HeaderField("L4", 8, 8, "IcmpCode")

# Common EtherType and IP protocol numbers used throughout the models.
ETHERTYPE_IP = 0x0800
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_ARP = 0x0806
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_IPIP = 4


def standard_fields() -> Dict[str, HeaderField]:
    """Return all named header fields keyed by their shorthand name."""
    fields = {}
    for obj in globals().values():
        if isinstance(obj, HeaderField) and obj.name:
            fields[obj.name] = obj
    return fields


def ethernet_fields() -> Tuple[HeaderField, ...]:
    return (EtherDst, EtherSrc, EtherType)


def ipv4_fields() -> Tuple[HeaderField, ...]:
    return (
        IpVersion,
        IpIhl,
        IpTos,
        IpLength,
        IpId,
        IpFragment,
        IpTtl,
        IpProto,
        IpChecksum,
        IpSrc,
        IpDst,
    )


def tcp_fields() -> Tuple[HeaderField, ...]:
    return (
        TcpSrc,
        TcpDst,
        TcpSeq,
        TcpAck,
        TcpFlags,
        TcpWindow,
        TcpChecksum,
        TcpUrgent,
    )


def udp_fields() -> Tuple[HeaderField, ...]:
    return (UdpSrc, UdpDst, UdpLength, UdpChecksum)


def icmp_fields() -> Tuple[HeaderField, ...]:
    return (IcmpType, IcmpCode)
