"""Expression and condition syntax for SEFL.

SEFL deliberately supports only simple expressions (referencing, addition,
subtraction, constants and fresh symbolic values) so that constraint solving
stays cheap (§5).  Conditions compare expressions and can be combined with
``And`` / ``Or`` / ``Not``; ``OneOf`` expresses membership in a (possibly
huge) set of constants, which is how generated switch and router models
encode "one of these N addresses" without exploding the solver.

These classes are pure syntax; :mod:`repro.core.engine` interprets them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple, Union

from repro.solver.intervals import IntervalSet


class Expression:
    """Base class for SEFL value expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class ConstantValue(Expression):
    """A concrete integer constant."""

    value: int


@dataclass(frozen=True)
class SymbolicValue(Expression):
    """A fresh, unconstrained symbolic value.

    Each evaluation produces a brand-new symbol; this is how the NAT model
    expresses "the mapped port is quasi-random" and how the encryption model
    replaces the payload with unreadable ciphertext (§7).
    """

    label: str = "sym"
    width: int = 32


@dataclass(frozen=True)
class Reference(Expression):
    """The current value of a variable (header field or metadata key)."""

    variable: "VariableLike"


@dataclass(frozen=True)
class Plus(Expression):
    left: "ExpressionLike"
    right: "ExpressionLike"


@dataclass(frozen=True)
class Minus(Expression):
    left: "ExpressionLike"
    right: "ExpressionLike"


class Condition:
    """Base class for SEFL boolean conditions."""

    __slots__ = ()


@dataclass(frozen=True)
class _BinaryCondition(Condition):
    left: "ExpressionLike"
    right: "ExpressionLike"


@dataclass(frozen=True)
class Eq(_BinaryCondition):
    pass


@dataclass(frozen=True)
class Ne(_BinaryCondition):
    pass


@dataclass(frozen=True)
class Lt(_BinaryCondition):
    pass


@dataclass(frozen=True)
class Le(_BinaryCondition):
    pass


@dataclass(frozen=True)
class Gt(_BinaryCondition):
    pass


@dataclass(frozen=True)
class Ge(_BinaryCondition):
    pass


@dataclass(frozen=True)
class OneOf(Condition):
    """Membership of an expression in a set of concrete values.

    ``values`` may be any iterable of integers, an iterable of ``(lo, hi)``
    ranges, or an :class:`IntervalSet`.  This is the condition emitted by the
    MAC-table and FIB parsers; it is the syntactic counterpart of the
    solver-level ``Member`` atom.
    """

    expression: "ExpressionLike"
    values: IntervalSet

    def __init__(
        self,
        expression: "ExpressionLike",
        values: Union[IntervalSet, Iterable[int], Iterable[Tuple[int, int]]],
    ) -> None:
        object.__setattr__(self, "expression", expression)
        object.__setattr__(self, "values", _coerce_interval_set(values))


def _coerce_interval_set(
    values: Union[IntervalSet, Iterable[int], Iterable[Tuple[int, int]]]
) -> IntervalSet:
    if isinstance(values, IntervalSet):
        return values
    items = list(values)
    if items and isinstance(items[0], tuple):
        return IntervalSet(items)  # type: ignore[arg-type]
    return IntervalSet.points(items)  # type: ignore[arg-type]


@dataclass(frozen=True)
class And(Condition):
    operands: Tuple[Condition, ...]

    def __init__(self, *operands: Condition) -> None:
        object.__setattr__(self, "operands", tuple(operands))


@dataclass(frozen=True)
class Or(Condition):
    operands: Tuple[Condition, ...]

    def __init__(self, *operands: Condition) -> None:
        object.__setattr__(self, "operands", tuple(operands))


@dataclass(frozen=True)
class Not(Condition):
    operand: Condition


# ``ExpressionLike`` values accepted wherever an expression is expected:
# integers become constants, strings become metadata references, header
# fields / tag offsets become header references.
ExpressionLike = Union[Expression, int, str, "VariableLike"]

# Imported lazily to avoid a cycle: fields.py defines the variable syntax.
VariableLike = object
