"""The SEFL instruction set (Figure 2 of the paper).

Instructions are plain syntax objects; the engine in
:mod:`repro.core.engine` gives them their symbolic semantics.  Every
instruction implicitly operates on the current execution state (packet) and
may fail the path, modify it, fork it or forward it to output ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

from repro.sefl.expressions import Condition, Expression
from repro.sefl.fields import VariableLike

# Visibility of metadata variables (paper: "global (default) or local to the
# current module").
GLOBAL = "global"
LOCAL = "local"

PortRef = Union[int, str]


class Instruction:
    """Base class for SEFL instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class Allocate(Instruction):
    """Allocate a new value stack for ``variable``.

    * string variable — metadata entry; ``visibility`` selects whether the
      key is global or local to the current network element;
    * header address (int / tag offset / field) — a header field allocated at
      that bit address; ``size`` (bits) is then mandatory.
    """

    variable: VariableLike
    size: Optional[int] = None
    visibility: str = GLOBAL


@dataclass(frozen=True)
class Deallocate(Instruction):
    """Destroy the topmost stack of ``variable``.

    If ``size`` is given it is checked against the allocated size; a mismatch
    or a missing allocation fails the execution path (header memory safety).
    """

    variable: VariableLike
    size: Optional[int] = None


@dataclass(frozen=True)
class Assign(Instruction):
    """Symbolically evaluate ``expression`` and store it in ``variable``."""

    variable: VariableLike
    expression: Union[Expression, int, str, VariableLike]


@dataclass(frozen=True)
class CreateTag(Instruction):
    """Create tag ``name`` at the address ``value`` (must be concrete)."""

    name: str
    value: Union[Expression, int, VariableLike]


@dataclass(frozen=True)
class DestroyTag(Instruction):
    """Destroy tag ``name``."""

    name: str


@dataclass(frozen=True)
class Constrain(Instruction):
    """Require ``condition`` to hold; the path fails if it cannot.

    Two spellings are accepted, matching the paper's examples:

    * ``Constrain(Eq(TcpDst, 80))`` — a single condition argument;
    * ``Constrain(TcpDst, Eq(..)/"==80"-style condition)`` — variable plus a
      condition whose left side is implicitly that variable (used by a few
      models; the condition's ``left`` may be ``None`` in that case).
    """

    condition: Condition
    variable: Optional[VariableLike] = None


@dataclass(frozen=True)
class Fail(Instruction):
    """Stop the current path, recording ``message``."""

    message: str = "Fail"


@dataclass(frozen=True)
class If(Instruction):
    """Fork the state: one branch assumes ``condition`` and runs ``then_branch``,
    the other assumes its negation and runs ``else_branch``."""

    condition: Union[Condition, "Constrain"]
    then_branch: Instruction
    else_branch: Instruction = field(default_factory=lambda: NoOp())


@dataclass(frozen=True)
class For(Instruction):
    """Iterate over a snapshot of metadata keys matching ``pattern`` (a
    regular expression) and run ``body(key)`` for each match.

    The loop is unfolded before execution (no branching), exactly as in the
    paper.  ``body`` is a callable so that the loop variable can be spliced
    into the generated instructions.
    """

    pattern: str
    body: Callable[[str], Instruction]


@dataclass(frozen=True)
class Forward(Instruction):
    """Forward the packet to output port ``port``."""

    port: PortRef


@dataclass(frozen=True)
class Fork(Instruction):
    """Duplicate the packet and forward one copy to each listed output port."""

    ports: Tuple[PortRef, ...]

    def __init__(self, *ports: PortRef) -> None:
        object.__setattr__(self, "ports", tuple(ports))


@dataclass(frozen=True)
class InstructionBlock(Instruction):
    """A compound instruction executing its children in order."""

    instructions: Tuple[Instruction, ...]

    def __init__(self, *instructions: Instruction) -> None:
        flat = []
        for instr in instructions:
            if isinstance(instr, (list, tuple)):
                flat.extend(instr)
            else:
                flat.append(instr)
        object.__setattr__(self, "instructions", tuple(flat))

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass(frozen=True)
class NoOp(Instruction):
    """Does nothing."""
