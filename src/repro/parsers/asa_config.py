"""Parse a practical subset of the CISCO ASA configuration language.

The paper reverse-engineered the ASA 5510 via black-box testing and then
wrote a tool that "parses the ASA configuration file and generates a Click
ASA model automatically" (§7.2).  This parser covers the statements that
determine data-plane behaviour in the default configuration:

* ``hostname NAME``
* ``ip address PUBLIC`` on the outside interface (the dynamic-NAT address);
* ``static (inside,outside) PUBLIC PRIVATE`` — static NAT entries;
* ``global (outside) 1 interface`` / ``nat (inside) 1 0.0.0.0 0.0.0.0`` —
  enable dynamic PAT on the outside address;
* ``access-list NAME extended permit|deny PROTO SRC [mask] DST [mask]
  [eq PORT]`` — inbound filtering rules;
* ``sysopt connection tcpmss VALUE`` — the MSS clamp applied by TCP
  inspection.

Everything else (logging, SSH, timeouts, …) is ignored, exactly as the
paper's models ignore behaviour that never decides the fate of a packet.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.models.asa import AsaConfig
from repro.models.firewall import AclRule
from repro.models.tcp_options import ASA_DEFAULT_OPTION_POLICY, OptionPolicy
from repro.sefl.util import ip_to_number, number_to_ip

_PROTO_NAMES = {"ip": None, "tcp": 6, "udp": 17, "icmp": 1}


def _mask_to_prefix_len(mask: str) -> int:
    value = ip_to_number(mask)
    return bin(value).count("1")


def _address_clause(tokens: List[str], index: int) -> Tuple[Optional[str], int]:
    """Parse ``any`` / ``host A.B.C.D`` / ``A.B.C.D MASK`` starting at
    ``tokens[index]``; returns (prefix string or None, next index)."""
    token = tokens[index]
    if token == "any":
        return None, index + 1
    if token == "host":
        return f"{tokens[index + 1]}/32", index + 2
    address = token
    mask = tokens[index + 1] if index + 1 < len(tokens) else "255.255.255.255"
    return f"{address}/{_mask_to_prefix_len(mask)}", index + 2


def parse_asa_config(text: str) -> AsaConfig:
    """Parse an ASA configuration into :class:`AsaConfig`."""
    config = AsaConfig()
    static_nat: List[Tuple[str, str]] = []
    inbound_rules: List[AclRule] = []
    mss_clamp: Optional[int] = None
    dynamic_nat = False

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("!"):
            continue
        tokens = line.split()

        if tokens[0] == "ip" and tokens[1] == "address" and len(tokens) >= 3:
            config.public_address = tokens[2]
            continue

        if tokens[0] == "static" and len(tokens) >= 4:
            # static (inside,outside) PUBLIC PRIVATE [netmask ...]
            public, private = tokens[2], tokens[3]
            static_nat.append((public, private))
            continue

        if tokens[0] in ("global", "nat"):
            dynamic_nat = True
            continue

        if tokens[0] == "sysopt" and "tcpmss" in tokens:
            mss_clamp = int(tokens[-1])
            continue

        if tokens[0] == "access-list" and "extended" in tokens:
            try:
                rule = _parse_access_list(tokens)
            except (IndexError, ValueError, KeyError):
                continue
            if rule is not None:
                inbound_rules.append(rule)
            continue

    config.static_nat = static_nat
    config.inbound_rules = inbound_rules
    config.enable_dynamic_nat = dynamic_nat or config.enable_dynamic_nat
    if mss_clamp is not None:
        config.options_policy = replace(
            ASA_DEFAULT_OPTION_POLICY, mss_clamp=mss_clamp
        )
    return config


def _parse_access_list(tokens: List[str]) -> Optional[AclRule]:
    """Parse one ``access-list ... extended permit|deny ...`` line."""
    index = tokens.index("extended") + 1
    action_token = tokens[index]
    if action_token not in ("permit", "deny"):
        return None
    action = "allow" if action_token == "permit" else "deny"
    index += 1
    proto_token = tokens[index]
    proto = _PROTO_NAMES.get(proto_token)
    index += 1
    src, index = _address_clause(tokens, index)
    dst, index = _address_clause(tokens, index)
    dst_port = None
    if index < len(tokens) and tokens[index] == "eq":
        dst_port = int(tokens[index + 1])
    return AclRule(
        action=action, src=src, dst=dst, proto=proto, dst_port=dst_port
    )


def format_asa_config(config: AsaConfig) -> str:
    """Render an :class:`AsaConfig` back into configuration text (used by the
    department-network workload to produce a realistic input file)."""
    lines = ["hostname asa", f"ip address {config.public_address}"]
    for public, private in config.static_nat:
        lines.append(f"static (inside,outside) {public} {private}")
    if config.enable_dynamic_nat:
        lines.append("global (outside) 1 interface")
        lines.append("nat (inside) 1 0.0.0.0 0.0.0.0")
    for rule in config.inbound_rules:
        action = "permit" if rule.action == "allow" else "deny"
        proto = {6: "tcp", 17: "udp", 1: "icmp", None: "ip"}[rule.proto]
        src = "any" if rule.src is None else f"host {rule.src.split('/')[0]}"
        dst = "any" if rule.dst is None else f"host {rule.dst.split('/')[0]}"
        suffix = f" eq {rule.dst_port}" if rule.dst_port is not None else ""
        lines.append(
            f"access-list outside_in extended {action} {proto} {src} {dst}{suffix}"
        )
    if config.options_policy.mss_clamp is not None:
        lines.append(f"sysopt connection tcpmss {config.options_policy.mss_clamp}")
    return "\n".join(lines) + "\n"
