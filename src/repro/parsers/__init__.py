"""Configuration parsers that turn device snapshots into SEFL models (§7.1).

"All the user has to do is place all these files in a single directory,
together with a file describing the links between the boxes" — these parsers
implement that workflow:

* :mod:`repro.parsers.mac_table` — CISCO ``show mac address-table`` snapshots
  → switch models;
* :mod:`repro.parsers.routing_table` — forwarding-table snapshots → IP router
  models;
* :mod:`repro.parsers.asa_config` — a practical subset of the ASA
  configuration language → :class:`repro.models.asa.AsaConfig`;
* :mod:`repro.parsers.topology_file` — the links file + per-device snapshots
  → a fully wired :class:`repro.network.Network`.
"""

from repro.parsers.mac_table import parse_mac_table, switch_from_mac_table
from repro.parsers.routing_table import parse_routing_table, router_from_routing_table
from repro.parsers.asa_config import parse_asa_config
from repro.parsers.topology_file import load_network_directory, parse_topology_file

__all__ = [
    "load_network_directory",
    "parse_asa_config",
    "parse_mac_table",
    "parse_routing_table",
    "parse_topology_file",
    "router_from_routing_table",
    "switch_from_mac_table",
]
