"""Topology file parser: assemble a network from per-device snapshots.

Per §7.1, the user places the device snapshots in a directory together with
a file describing the links between the boxes, then runs SymNet on it.  The
topology file format accepted here::

    # device declarations: name, kind, snapshot file (relative to the dir)
    device sw1 switch sw1.mac
    device r1  router r1.fib
    device fw1 asa    fw1.conf
    device a1  service-acl a1.acl
    device p1  click  pipeline.click

    # unidirectional links: element:port -> element:port
    link sw1:out0 -> r1:in0
    link r1:out0  -> sw1:in0

Devices of kind ``switch`` / ``router`` / ``asa`` are built through the
corresponding parsers; ``click`` devices expand into all the elements of the
referenced Click configuration (their internal links included), and the
topology file then refers to those inner element names directly.
"""

from __future__ import annotations

import hashlib
import os
import re
from typing import Dict, List, Optional, Tuple

from repro.click.parser import parse_click_config
from repro.models.asa import build_asa
from repro.network.topology import Network
from repro.parsers.asa_config import parse_asa_config
from repro.parsers.mac_table import switch_from_mac_table
from repro.parsers.routing_table import router_from_routing_table
from repro.parsers.service_acl import service_acl_from_snapshot

_DEVICE = re.compile(r"^device\s+(?P<name>\S+)\s+(?P<kind>\S+)\s+(?P<file>\S+)$")
_LINK = re.compile(
    r"^link\s+(?P<src>[\w.-]+):(?P<srcport>[\w*/.-]+)\s*->\s*"
    r"(?P<dst>[\w.-]+):(?P<dstport>[\w*/.-]+)$"
)


class TopologyParseError(Exception):
    """Raised when a topology description cannot be parsed."""


def parse_topology_file(
    text: str,
    snapshots: Dict[str, str],
    network: Optional[Network] = None,
    provenance: Optional[Dict[str, List[str]]] = None,
) -> Network:
    """Parse a topology description.

    ``snapshots`` maps file names referenced in the description to their
    contents, which keeps the parser independent of the filesystem (the
    directory-based entry point below populates it from disk).

    ``provenance``, when given, is filled with snapshot-file → element-names
    entries: exactly the elements each device file's contents expanded into
    (a ``click`` snapshot may contribute many).  Delta verification uses
    this to map an edited file back to the network elements it defines.
    """
    network = network if network is not None else Network("parsed-topology")
    links: List[Tuple[str, str, str, str]] = []

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        device = _DEVICE.match(line)
        if device:
            before = set(network._elements) if provenance is not None else ()
            _build_device(
                network,
                device.group("name"),
                device.group("kind"),
                device.group("file"),
                snapshots,
            )
            if provenance is not None:
                created = [name for name in network._elements if name not in before]
                provenance.setdefault(device.group("file"), []).extend(created)
            continue
        link = _LINK.match(line)
        if link:
            links.append(
                (
                    link.group("src"),
                    link.group("srcport"),
                    link.group("dst"),
                    link.group("dstport"),
                )
            )
            continue
        raise TopologyParseError(f"cannot parse line: {line!r}")

    for src, src_port, dst, dst_port in links:
        # Permissive: links naming unknown elements are recorded rather than
        # rejected, so they surface as Network.validate() findings and the
        # CLI can warn about them before execution (the engine terminates
        # any path reaching one with an explicit "dangling link" drop).
        network.add_link_permissive((src, src_port), (dst, dst_port))
    return network


def _build_device(
    network: Network,
    name: str,
    kind: str,
    snapshot_name: str,
    snapshots: Dict[str, str],
) -> None:
    if snapshot_name not in snapshots:
        raise TopologyParseError(
            f"device {name!r} references missing snapshot {snapshot_name!r}"
        )
    content = snapshots[snapshot_name]
    if kind == "switch":
        network.add_element(switch_from_mac_table(name, content))
    elif kind == "router":
        network.add_element(router_from_routing_table(name, content))
    elif kind == "asa":
        build_asa(network, name, parse_asa_config(content))
    elif kind == "service-acl":
        network.add_element(service_acl_from_snapshot(name, content))
    elif kind == "click":
        parse_click_config(content, network)
    else:
        raise TopologyParseError(f"unknown device kind {kind!r} for {name!r}")


def referenced_snapshot_files(topology_text: str) -> List[str]:
    """The snapshot file names a topology description references, in
    declaration order (duplicates removed).  Uses the parser's own device
    grammar, so callers that fingerprint a snapshot directory (the plan
    cache's model identity) can never drift from what the parser reads."""
    seen: List[str] = []
    for raw_line in topology_text.splitlines():
        device = _DEVICE.match(raw_line.strip())
        if device and device.group("file") not in seen:
            seen.append(device.group("file"))
    return seen


def load_network_directory(directory: str) -> Network:
    """Load a network from a directory containing ``topology.txt`` plus the
    per-device snapshot files it references.

    The returned network carries a ``source_manifest`` attribute: the
    per-element content manifest (``topology.txt`` digest plus, for every
    referenced snapshot file, a digest of the exact bytes this build parsed
    and the element names they expanded into).  Digesting happens on the
    bytes already in hand, so the manifest adds no extra I/O — it is what
    lets :mod:`repro.core.delta` later tell *which* elements an edited
    directory actually touched.
    """
    topology_path = os.path.join(directory, "topology.txt")
    with open(topology_path, "rb") as handle:
        topology_bytes = handle.read()
    topology_text = topology_bytes.decode("utf-8")
    snapshots: Dict[str, str] = {}
    raw: Dict[str, bytes] = {}
    for entry in os.listdir(directory):
        path = os.path.join(directory, entry)
        if entry == "topology.txt" or not os.path.isfile(path):
            continue
        with open(path, "rb") as handle:
            data = handle.read()
        raw[entry] = data
        snapshots[entry] = data.decode("utf-8")
    provenance: Dict[str, List[str]] = {}
    network = parse_topology_file(topology_text, snapshots, provenance=provenance)
    network.source_manifest = {
        "topology_digest": hashlib.sha256(topology_bytes).hexdigest(),
        "files": {
            name: {
                "digest": hashlib.sha256(raw[name]).hexdigest(),
                "elements": sorted(provenance.get(name, [])),
            }
            for name in referenced_snapshot_files(topology_text)
            if name in raw
        },
    }
    return network

