"""Parse router forwarding-table snapshots into IP router models.

Accepted line format (one rule per line, comments with ``#``)::

    10.0.0.0/8        if0
    192.168.0.0/24    if1
    192.168.0.1/32    if0
    0.0.0.0/0         if2        # default route

which mirrors the (prefix → output interface) snapshots the paper feeds its
generator, e.g. the publicly available core-router table with 188 500
entries.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from repro.models.router import FibEntry, RouterModelStyle, build_router
from repro.network.element import NetworkElement
from repro.sefl.util import number_to_ip, parse_prefix

_ENTRY = re.compile(r"^\s*(?P<prefix>[\d./]+)\s+(?P<port>\S+)\s*(#.*)?$")


def parse_routing_table(text: str) -> List[FibEntry]:
    """Parse a forwarding-table snapshot into a list of FIB entries."""
    entries: List[FibEntry] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _ENTRY.match(stripped)
        if not match:
            continue
        try:
            address, plen = parse_prefix(match.group("prefix"))
        except ValueError:
            continue
        entries.append((address, plen, match.group("port")))
    return entries


def router_from_routing_table(
    name: str,
    text: str,
    style: RouterModelStyle = RouterModelStyle.EGRESS,
    input_ports: Sequence[str] = ("in0",),
) -> NetworkElement:
    """Parse a snapshot and build the corresponding router model."""
    fib = parse_routing_table(text)
    return build_router(name, fib, style=style, input_ports=input_ports)


def format_routing_table(fib: Sequence[FibEntry]) -> str:
    """Render FIB entries back into snapshot text."""
    lines = []
    for address, plen, port in fib:
        lines.append(f"{number_to_ip(address)}/{plen}    {port}")
    return "\n".join(lines) + "\n"
