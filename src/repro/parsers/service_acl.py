"""Service-ACL snapshot parser: a zone-edge port-blocking ACL as a file.

The snapshot format is one rule per line::

    # lines starting with '#' are comments
    block 23
    block 445

Each ``block P`` rule drops any packet whose TCP source *or* destination
port equals ``P``; packets matching no rule are forwarded from ``in0`` to
``out0``.  This is the on-disk form of the synthetic zone-edge service ACL
the Stanford-style workload builds in process
(:func:`repro.workloads.stanford.build_service_acl`): both construct their
element through :func:`service_acl_element` so the SEFL programs — and
therefore campaign fingerprints — are identical whichever path built them.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.network.element import NetworkElement
from repro.sefl.expressions import Eq, Or
from repro.sefl.fields import TcpDst, TcpSrc
from repro.sefl.instructions import Fail, Forward, If, InstructionBlock, NoOp

_RULE = re.compile(r"^block\s+(?P<port>\d+)$")


class ServiceAclParseError(Exception):
    """Raised when a service-ACL snapshot cannot be parsed."""


def parse_service_acl(text: str) -> List[int]:
    """Parse a service-ACL snapshot into its blocked-port list (in file
    order — rule order is part of the element's identity)."""
    ports: List[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        rule = _RULE.match(line)
        if not rule:
            raise ServiceAclParseError(f"cannot parse service-acl line: {line!r}")
        ports.append(int(rule.group("port")))
    return ports


def format_service_acl(ports: Sequence[int]) -> str:
    """Render a blocked-port list back into the snapshot format (the
    inverse of :func:`parse_service_acl`)."""
    lines = [f"block {port}" for port in ports]
    return "\n".join(lines) + ("\n" if lines else "")


def service_acl_element(name: str, ports: Sequence[int]) -> NetworkElement:
    """The service-ACL network element: one ``TcpSrc == p or TcpDst == p``
    drop check per blocked port, then forward ``in0`` → ``out0``.

    Each rule's match mixes two symbolic variables, so probing it falls
    outside the interval-domain fast path and costs a real solve — the
    constraint shape whose repetition across symmetric zones the canonical
    verdict cache exists to absorb.
    """
    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="service-acl"
    )
    checks = [
        If(
            Or(Eq(TcpSrc, port), Eq(TcpDst, port)),
            Fail(f"blocked service port {port}"),
            NoOp(),
        )
        for port in ports
    ]
    element.set_input_program("in0", InstructionBlock(*checks, Forward("out0")))
    return element


def service_acl_from_snapshot(name: str, text: str) -> NetworkElement:
    """Build the element for one parsed snapshot (topology-file entry
    point for ``device NAME service-acl FILE`` lines)."""
    return service_acl_element(name, parse_service_acl(text))
