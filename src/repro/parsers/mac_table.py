"""Parse CISCO switch MAC-table snapshots into switch models.

The accepted format follows ``show mac address-table`` output::

    Vlan    Mac Address       Type        Ports
    ----    -----------       ----        -----
     302    0011.2233.4455    DYNAMIC     Gi0/1
     304    0011.2233.4466    STATIC      Gi0/2

Lines that do not look like table entries (headers, separators, totals) are
ignored.  The parser groups MAC addresses per output port — the structure
the egress switch model needs — and can optionally restrict the snapshot to
one VLAN.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence

from repro.models.switch import SwitchModelStyle, build_switch
from repro.network.element import NetworkElement
from repro.sefl.util import mac_to_number

_ENTRY = re.compile(
    r"^\s*(?P<vlan>\d+)\s+(?P<mac>[0-9a-fA-F.:-]+)\s+(?P<type>\w+)\s+(?P<port>\S+)\s*$"
)


def parse_mac_table(
    text: str, vlan: Optional[int] = None
) -> Dict[str, List[int]]:
    """Parse a MAC-table snapshot into ``{port: [mac, ...]}``."""
    table: Dict[str, List[int]] = {}
    for line in text.splitlines():
        match = _ENTRY.match(line)
        if not match:
            continue
        if vlan is not None and int(match.group("vlan")) != vlan:
            continue
        try:
            mac = mac_to_number(match.group("mac"))
        except ValueError:
            continue
        table.setdefault(match.group("port"), []).append(mac)
    return table


def switch_from_mac_table(
    name: str,
    text: str,
    style: SwitchModelStyle = SwitchModelStyle.EGRESS,
    vlan: Optional[int] = None,
    input_ports: Sequence[str] = ("in0",),
) -> NetworkElement:
    """Parse a snapshot and build the corresponding switch model."""
    table = parse_mac_table(text, vlan=vlan)
    return build_switch(name, table, style=style, input_ports=input_ports)


def format_mac_table(table: Dict[str, List[int]], vlan: int = 1) -> str:
    """Render a MAC table back into snapshot text (used by tests and the
    workload generators to produce realistic input files)."""
    from repro.sefl.util import number_to_mac

    lines = ["Vlan    Mac Address       Type        Ports",
             "----    -----------       ----        -----"]
    for port, macs in table.items():
        for mac in macs:
            lines.append(f" {vlan:<6} {number_to_mac(mac):<17} DYNAMIC     {port}")
    return "\n".join(lines) + "\n"
