"""Evaluation baselines.

* :mod:`repro.baselines.hsa` — a Header Space Analysis engine (wildcard
  header spaces + transfer functions) used for the runtime comparison of
  Table 3 and the capability matrix of Table 5;
* :mod:`repro.baselines.kleesim` — a Klee-style byte-level symbolic executor
  that runs the actual ASA TCP-options parsing algorithm over a symbolic
  byte array, reproducing the path explosion of Table 1 and the partial
  property coverage of Table 4.
"""

from repro.baselines.hsa import (
    HeaderSpace,
    HsaNetwork,
    TransferFunction,
    TransferRule,
    WildcardExpr,
)
from repro.baselines.kleesim import KleeOptionsAnalysis, KleeResult

__all__ = [
    "HeaderSpace",
    "HsaNetwork",
    "KleeOptionsAnalysis",
    "KleeResult",
    "TransferFunction",
    "TransferRule",
    "WildcardExpr",
]
