"""Klee-style byte-level symbolic execution of the TCP-options parsing code.

The paper's Table 1 and Table 4 measure what happens when a generic symbolic
execution engine (Klee) is pointed at the firewall's options-parsing C code
(Figure 1): the options field is a symbolic byte array, every data-dependent
branch forks a path, and the number of paths grows super-linearly with the
options length.

This module reimplements that experiment faithfully but in Python: the
*algorithm being executed is the C code's algorithm* (EOL / NOP handling,
option-size validation, per-option DROP / ALLOW / STRIP verdicts), and the
execution is symbolic — each option byte is an 8-bit solver variable and
each branch decision adds path constraints checked with the same solver
SymNet uses.  The exponential path growth and the inability to answer
whole-field questions within a time budget are properties of the approach,
not of the host language, which is exactly the point of the comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.models.tcp_options import (
    ALLOW,
    ASA_DEFAULT_OPTION_POLICY,
    DROP,
    OPTION_EOL,
    OPTION_NOP,
    OptionPolicy,
    STRIP,
)
from repro.solver.ast import Const, Eq, Formula, Ge, Gt, Le, Lt, Member, Ne, Var
from repro.solver.intervals import IntervalSet
from repro.solver.result import SolverResult
from repro.solver.solver import Solver


class KleeBudgetExceeded(Exception):
    """Raised internally when the path or time budget is exhausted."""


@dataclass
class KleePath:
    """One completed execution path of the options-parsing code."""

    constraints: List[Formula]
    verdict: str  # "accept" or "drop"
    allowed_options: List[Var] = field(default_factory=list)
    stripped: bool = False

    @property
    def accepts(self) -> bool:
        return self.verdict == "accept"


@dataclass
class KleeResult:
    """Outcome of a (possibly budget-limited) Klee-style analysis."""

    length: int
    paths: List[KleePath]
    runtime_seconds: float
    finished: bool
    solver_calls: int

    @property
    def path_count(self) -> int:
        return len(self.paths)


def _verdict_sets(policy: OptionPolicy) -> Tuple[Set[int], Set[int], Set[int]]:
    """Partition option kinds 2..255 into allow / drop / strip sets."""
    allow: Set[int] = set()
    drop: Set[int] = set()
    strip: Set[int] = set()
    for kind in range(2, 256):
        verdict = policy.verdict(kind)
        if verdict == ALLOW:
            allow.add(kind)
        elif verdict == DROP:
            drop.add(kind)
        else:
            strip.add(kind)
    return allow, drop, strip


class KleeOptionsAnalysis:
    """Symbolically execute the ASA options-parsing algorithm byte by byte."""

    def __init__(
        self,
        length: int,
        policy: OptionPolicy = ASA_DEFAULT_OPTION_POLICY,
        solver: Optional[Solver] = None,
    ) -> None:
        if length < 0 or length > 40:
            raise ValueError("TCP options length must be between 0 and 40 bytes")
        self.length = length
        self.policy = policy
        self.solver = solver if solver is not None else Solver()
        self.option_bytes: List[Var] = [
            Var(f"opt_byte_{index}", 8) for index in range(length)
        ]
        self._allow, self._drop, self._strip = _verdict_sets(policy)

    # -- exploration ----------------------------------------------------------

    def run(
        self,
        max_paths: Optional[int] = None,
        time_budget_seconds: Optional[float] = None,
    ) -> KleeResult:
        """Explore every feasible path, honouring the optional budgets."""
        started = time.perf_counter()
        calls_before = self.solver.stats.calls
        paths: List[KleePath] = []
        finished = True

        def out_of_budget() -> bool:
            if max_paths is not None and len(paths) >= max_paths:
                return True
            if (
                time_budget_seconds is not None
                and time.perf_counter() - started > time_budget_seconds
            ):
                return True
            return False

        try:
            self._explore(0, self.length, [], [], paths, out_of_budget)
        except KleeBudgetExceeded:
            finished = False

        return KleeResult(
            length=self.length,
            paths=paths,
            runtime_seconds=time.perf_counter() - started,
            finished=finished,
            solver_calls=self.solver.stats.calls - calls_before,
        )

    def _feasible(self, constraints: List[Formula]) -> bool:
        return not self.solver.check(constraints).is_unsat

    def _explore(
        self,
        ptr: int,
        remaining: int,
        constraints: List[Formula],
        allowed: List[Var],
        paths: List[KleePath],
        out_of_budget,
    ) -> None:
        """Recursive path exploration mirroring the while loop of Figure 1."""
        if out_of_budget():
            raise KleeBudgetExceeded()
        if remaining <= 0:
            paths.append(KleePath(list(constraints), "accept", list(allowed)))
            return

        opcode = self.option_bytes[ptr]

        # case TCPOPT_EOL: return True
        eol = constraints + [Eq(opcode, Const(OPTION_EOL))]
        if self._feasible(eol):
            paths.append(KleePath(eol, "accept", list(allowed)))

        # case TCPOPT_NOP: length--; ptr++; continue
        nop = constraints + [Eq(opcode, Const(OPTION_NOP))]
        if self._feasible(nop):
            self._explore(ptr + 1, remaining - 1, nop, allowed, paths, out_of_budget)

        # default: read opsize and validate it
        other = constraints + [Gt(opcode, Const(OPTION_NOP))]
        if not self._feasible(other):
            return

        if remaining < 2:
            # opsize read would fall outside the options field: the code nops
            # out everything and terminates.
            paths.append(KleePath(other, "accept", list(allowed), stripped=True))
            return

        opsize = self.option_bytes[ptr + 1]

        # Invalid size: (opsize < 2) || (opsize > length)  -> nop everything.
        invalid = other + [Lt(opsize, Const(2))]
        if self._feasible(invalid):
            paths.append(KleePath(invalid, "accept", list(allowed), stripped=True))
        invalid_big = other + [
            Ge(opsize, Const(2)),
            Gt(opsize, Const(remaining)),
        ]
        if self._feasible(invalid_big):
            paths.append(
                KleePath(invalid_big, "accept", list(allowed), stripped=True)
            )

        valid = other + [Ge(opsize, Const(2)), Le(opsize, Const(remaining))]
        if not self._feasible(valid):
            return

        # switch(_options[opcode]) — the verdict depends on the (symbolic)
        # opcode, so each verdict class is a separate path.
        if self._drop:
            dropped = valid + [
                Member(opcode, IntervalSet.points(sorted(self._drop)))
            ]
            if self._feasible(dropped):
                paths.append(KleePath(dropped, "drop", list(allowed)))

        for verdict_set, records_option in (
            (self._allow, True),
            (self._strip, False),
        ):
            if not verdict_set:
                continue
            classified = valid + [
                Member(opcode, IntervalSet.points(sorted(verdict_set)))
            ]
            if not self._feasible(classified):
                continue
            # ptr += opsize: the pointer must be concrete to index the array,
            # so (like Klee) we fork one path per feasible concrete size.
            for size in range(2, remaining + 1):
                sized = classified + [Eq(opsize, Const(size))]
                if not self._feasible(sized):
                    continue
                next_allowed = allowed + [opcode] if records_option else allowed
                self._explore(
                    ptr + size,
                    remaining - size,
                    sized,
                    next_allowed,
                    paths,
                    out_of_budget,
                )

    # -- property queries (Table 4) --------------------------------------------

    def option_allowed(self, result: KleeResult, kind: int) -> bool:
        """Can option ``kind`` appear in the output on some accepting path?"""
        for path in result.paths:
            if not path.accepts:
                continue
            for opcode in path.allowed_options:
                if self.solver.check(
                    path.constraints + [Eq(opcode, Const(kind))]
                ).is_sat:
                    return True
        return False

    def combination_allowed(self, result: KleeResult, kinds: Sequence[int]) -> bool:
        """Can all of ``kinds`` be simultaneously allowed on one path?"""
        wanted = list(kinds)
        for path in result.paths:
            if not path.accepts or len(path.allowed_options) < len(wanted):
                continue
            if len(path.allowed_options) == len(wanted):
                assignments = [
                    Eq(opcode, Const(kind))
                    for opcode, kind in zip(path.allowed_options, wanted)
                ]
                if self.solver.check(path.constraints + assignments).is_sat:
                    return True
        return False
