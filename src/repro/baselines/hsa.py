"""Header Space Analysis (HSA) baseline.

A compact reimplementation of the core of Kazemian et al.'s Header Space
Analysis [NSDI'12], the tool the paper compares against in Table 3 and
Table 5.  Headers are points in a ``{0,1}^L`` space; sets of headers are
unions of wildcard expressions (each bit ``0``, ``1`` or ``*``); network
boxes are transfer functions mapping (port, header set) to (port, header
set) pairs via match / rewrite rules.

The implementation represents a wildcard expression with two integers: a
*don't-care* mask (bit set → ``*``) and a value for the cared bits, which
keeps intersection and rewriting O(1) big-int operations even for wide
headers and large rule sets.

HSA's limitation that motivates SymNet (§2) falls out naturally: transfer
functions relate header *sets*, not individual packets, so after pushing a
fully wildcarded header through a tunnel the output is again fully
wildcarded — there is no way to state that each packet's payload is
unchanged.  The capability-matrix benchmark exercises exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class WildcardExpr:
    """A wildcard expression over ``width`` bits.

    ``dont_care`` has a 1 for every ``*`` position; ``value`` carries the
    concrete bits (its don't-care positions are normalised to 0).
    """

    width: int
    dont_care: int
    value: int

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        object.__setattr__(self, "dont_care", self.dont_care & mask)
        object.__setattr__(self, "value", self.value & mask & ~self.dont_care)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def all_wildcards(cls, width: int) -> "WildcardExpr":
        return cls(width, (1 << width) - 1, 0)

    @classmethod
    def exact(cls, width: int, value: int) -> "WildcardExpr":
        return cls(width, 0, value)

    @classmethod
    def from_field(
        cls, width: int, offset: int, field_width: int, value: int
    ) -> "WildcardExpr":
        """Wildcard everywhere except ``field_width`` bits at ``offset``
        (offset counted from bit 0 = least significant)."""
        field_mask = ((1 << field_width) - 1) << offset
        dont_care = ((1 << width) - 1) & ~field_mask
        return cls(width, dont_care, (value << offset) & field_mask)

    @classmethod
    def from_prefix(
        cls, width: int, offset: int, field_width: int, address: int, prefix_len: int
    ) -> "WildcardExpr":
        """A prefix match on a field: only the top ``prefix_len`` bits of the
        field are cared."""
        host_bits = field_width - prefix_len
        cared = (((1 << prefix_len) - 1) << host_bits) << offset
        dont_care = ((1 << width) - 1) & ~cared
        return cls(width, dont_care, (address << offset) & cared)

    # -- operations -----------------------------------------------------------

    def intersect(self, other: "WildcardExpr") -> Optional["WildcardExpr"]:
        """Intersection, or ``None`` when the expressions conflict."""
        both_cared = ~self.dont_care & ~other.dont_care
        if (self.value ^ other.value) & both_cared:
            return None
        dont_care = self.dont_care & other.dont_care
        value = (self.value & ~self.dont_care) | (other.value & ~other.dont_care)
        return WildcardExpr(self.width, dont_care, value)

    def rewrite(self, rewrite_mask: int, rewrite_value: int) -> "WildcardExpr":
        """Overwrite the bits where ``rewrite_mask`` is 0 with
        ``rewrite_value`` (the Hassel convention)."""
        dont_care = self.dont_care & rewrite_mask
        value = (self.value & rewrite_mask) | (rewrite_value & ~rewrite_mask)
        return WildcardExpr(self.width, dont_care, value)

    def covers(self, other: "WildcardExpr") -> bool:
        """True if every header matching ``other`` also matches ``self``."""
        if other.dont_care & ~self.dont_care:
            return False
        both_cared = ~self.dont_care
        return not ((self.value ^ other.value) & both_cared & ~other.dont_care)

    def sample(self) -> int:
        """An arbitrary header matching the expression (wildcards as 0)."""
        return self.value

    def count_wildcards(self) -> int:
        return bin(self.dont_care).count("1")

    def __str__(self) -> str:
        chars = []
        for bit in range(self.width - 1, -1, -1):
            if (self.dont_care >> bit) & 1:
                chars.append("x")
            else:
                chars.append(str((self.value >> bit) & 1))
        return "".join(chars)


@dataclass
class HeaderSpace:
    """A union of wildcard expressions."""

    width: int
    exprs: List[WildcardExpr] = field(default_factory=list)

    @classmethod
    def all_headers(cls, width: int) -> "HeaderSpace":
        return cls(width, [WildcardExpr.all_wildcards(width)])

    @classmethod
    def empty(cls, width: int) -> "HeaderSpace":
        return cls(width, [])

    def is_empty(self) -> bool:
        return not self.exprs

    def add(self, expr: WildcardExpr) -> None:
        self.exprs.append(expr)

    def intersect_expr(self, expr: WildcardExpr) -> "HeaderSpace":
        result = HeaderSpace(self.width)
        for own in self.exprs:
            joined = own.intersect(expr)
            if joined is not None:
                result.add(joined)
        return result

    def union(self, other: "HeaderSpace") -> "HeaderSpace":
        return HeaderSpace(self.width, list(self.exprs) + list(other.exprs))

    def covers_exact(self, value: int) -> bool:
        probe = WildcardExpr.exact(self.width, value)
        return any(expr.intersect(probe) is not None for expr in self.exprs)

    def expr_count(self) -> int:
        return len(self.exprs)


@dataclass(frozen=True)
class TransferRule:
    """One rule of a transfer function: match → rewrite → output ports."""

    match: WildcardExpr
    out_ports: Tuple[str, ...]
    rewrite_mask: Optional[int] = None
    rewrite_value: int = 0

    def apply(self, space: HeaderSpace) -> Optional[HeaderSpace]:
        matched = space.intersect_expr(self.match)
        if matched.is_empty():
            return None
        if self.rewrite_mask is None:
            return matched
        rewritten = HeaderSpace(space.width)
        for expr in matched.exprs:
            rewritten.add(expr.rewrite(self.rewrite_mask, self.rewrite_value))
        return rewritten


@dataclass
class TransferFunction:
    """A network box in HSA: an ordered rule list per input port.

    Rules attached to the wildcard port ``"*"`` apply to every input port.
    Unlike the SymNet models, rule priority is encoded by subtracting earlier
    matches is *not* implemented — like Hassel, all matching rules fire and
    the caller is expected to provide disjoint matches (which the generated
    FIB/MAC rules are).
    """

    name: str
    width: int
    rules: Dict[str, List[TransferRule]] = field(default_factory=dict)

    def add_rule(self, in_port: str, rule: TransferRule) -> None:
        self.rules.setdefault(in_port, []).append(rule)

    def apply(self, in_port: str, space: HeaderSpace) -> List[Tuple[str, HeaderSpace]]:
        outputs: List[Tuple[str, HeaderSpace]] = []
        for port_key in (in_port, "*"):
            for rule in self.rules.get(port_key, []):
                produced = rule.apply(space)
                if produced is None:
                    continue
                for out_port in rule.out_ports:
                    outputs.append((out_port, produced))
        return outputs

    def rule_count(self) -> int:
        return sum(len(rules) for rules in self.rules.values())


@dataclass
class ReachabilityResult:
    """Header spaces reaching each (element, port) during propagation."""

    reached: Dict[Tuple[str, str], HeaderSpace] = field(default_factory=dict)
    hops_explored: int = 0

    def reaches(self, element: str, port: str) -> bool:
        key = (element, port)
        return key in self.reached and not self.reached[key].is_empty()

    def space_at(self, element: str, port: str) -> Optional[HeaderSpace]:
        return self.reached.get((element, port))


class HsaNetwork:
    """A topology of transfer functions with HSA reachability."""

    def __init__(self, width: int) -> None:
        self.width = width
        self._boxes: Dict[str, TransferFunction] = {}
        self._links: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def add_box(self, box: TransferFunction) -> TransferFunction:
        self._boxes[box.name] = box
        return box

    def add_link(
        self, src: Tuple[str, str], dst: Tuple[str, str]
    ) -> None:
        self._links[src] = dst

    def box(self, name: str) -> TransferFunction:
        return self._boxes[name]

    def total_rules(self) -> int:
        return sum(box.rule_count() for box in self._boxes.values())

    def reachability(
        self,
        element: str,
        port: str,
        space: Optional[HeaderSpace] = None,
        max_hops: int = 64,
    ) -> ReachabilityResult:
        """Propagate ``space`` (default: all headers) from ``element:port``."""
        if space is None:
            space = HeaderSpace.all_headers(self.width)
        result = ReachabilityResult()
        worklist: List[Tuple[str, str, HeaderSpace, int]] = [
            (element, port, space, 0)
        ]
        while worklist:
            box_name, in_port, incoming, hops = worklist.pop()
            result.hops_explored += 1
            key = (box_name, in_port)
            existing = result.reached.get(key)
            if existing is None:
                result.reached[key] = HeaderSpace(self.width, list(incoming.exprs))
            else:
                # Avoid re-exploring if the incoming space adds nothing new.
                new_exprs = [
                    expr
                    for expr in incoming.exprs
                    if not any(old.covers(expr) for old in existing.exprs)
                ]
                if not new_exprs:
                    continue
                existing.exprs.extend(new_exprs)
                incoming = HeaderSpace(self.width, new_exprs)
            if hops >= max_hops:
                continue
            box = self._boxes.get(box_name)
            if box is None:
                continue
            for out_port, outgoing in box.apply(in_port, incoming):
                out_key = (box_name, out_port)
                out_existing = result.reached.setdefault(
                    out_key, HeaderSpace(self.width)
                )
                out_existing.exprs.extend(outgoing.exprs)
                destination = self._links.get((box_name, out_port))
                if destination is not None:
                    worklist.append(
                        (destination[0], destination[1], outgoing, hops + 1)
                    )
        return result
