"""Observability: hierarchical span tracing + a metrics registry + logging.

The five stacked speed mechanisms (incremental solving, verdict caching,
symmetry classes, delta splicing, plan merging) each change *which tier
answers, never the answer* — which also means a flat end-of-run counter
dump is the only window into where a query's time actually went.  This
package opens live windows:

* :mod:`repro.obs.trace` — a :class:`Tracer` with a zero-cost no-op
  default; spans for plan compile → campaign → symmetry class → engine
  job → solver check / store publish / delta splice, carried across the
  process-pool boundary through ``JobReport.spans`` and re-parented
  under the campaign span; exported as Chrome trace-event JSON (open in
  Perfetto) or JSONL via ``--trace-out``.
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with
  Prometheus text exposition; fed from finished job reports and
  campaigns, and literally backing the resident service's scheduler
  counters (the ``metrics`` protocol verb renders it).
* :mod:`repro.obs.logs` — the ``repro`` logging hierarchy behind the
  CLI's ``--log-level`` / ``-v`` flags.

The standing invariant extends to telemetry: tracing {off, on} changes
which spans and series are emitted, never any answer or fingerprint
(``tests/test_obs.py`` holds this across workers {1, 2}).
"""

from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ensure_core_families,
    get_registry,
    record_campaign_stats,
    record_job_report,
    reset_registry,
)
from repro.obs.trace import (
    NullTracer,
    Span,
    Tracer,
    chrome_trace,
    get_tracer,
    set_tracer,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "ensure_core_families",
    "get_logger",
    "get_registry",
    "get_tracer",
    "record_campaign_stats",
    "record_job_report",
    "reset_registry",
    "set_tracer",
    "write_trace",
]
