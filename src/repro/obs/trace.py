"""Hierarchical span tracing with a zero-cost no-op default.

The engine answers "is this packet deliverable" in milliseconds; this
module answers "where did those milliseconds go".  A :class:`Tracer`
records a tree of timed spans — session → plan compile → campaign →
symmetry class → engine job → solver check / store publish / delta
splice — and exports them as Chrome trace-event JSON (open the file at
https://ui.perfetto.dev) or JSONL.

Design constraints, in order:

* **Tracing never moves an answer.**  Spans carry telemetry out of the
  run; nothing in the run reads them back.  The bit-identity tests in
  ``tests/test_obs.py`` hold fingerprints equal across tracing
  {off, on} × workers {1, 2}.
* **Off is free.**  The process-global tracer defaults to
  :class:`NullTracer`, whose ``span()`` returns one shared no-op context
  manager — no allocation, no timestamps, no branches beyond the call
  itself.  Hot loops (the solver's per-path checks) additionally guard on
  ``tracer.enabled`` so even the keyword-argument dict is never built.
* **Spans cross the process boundary as plain data.**  Pool workers
  record into a local tracer and ship ``Span.to_payload()`` dicts back
  through the picklable ``JobReport.spans`` channel; the campaign driver
  re-parents them under its own campaign span with :meth:`Tracer.absorb`
  (span ids are remapped, so ids from different workers never collide).

Timestamps are ``time.perf_counter_ns()`` — CLOCK_MONOTONIC on Linux,
which is comparable across processes on one machine, so worker spans
land on the same timeline as the driver's without clock gymnastics.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "chrome_trace",
    "write_trace",
]


@dataclass
class Span:
    """One finished timed operation.  Plain data only: spans pickle, and
    their payload dicts travel in ``JobReport.spans``."""

    name: str
    span_id: int
    parent_id: int
    start_ns: int
    end_ns: int
    pid: int
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Span":
        return cls(
            name=str(payload.get("name", "")),
            span_id=int(payload.get("span_id", 0)),
            parent_id=int(payload.get("parent_id", 0)),
            start_ns=int(payload.get("start_ns", 0)),
            end_ns=int(payload.get("end_ns", 0)),
            pid=int(payload.get("pid", 0)),
            attrs=dict(payload.get("attrs", {})),
        )


class _ActiveSpan:
    """An open span: the context manager :meth:`Tracer.span` returns.
    Exposes ``span_id`` so callers can re-parent foreign spans under it."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start_ns", "attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.span_id = 0
        self.parent_id = 0
        self.start_ns = 0
        self.attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self, failed=exc_type is not None)
        return False


class _NoopSpan:
    """The one shared do-nothing span of the :class:`NullTracer`."""

    __slots__ = ()
    span_id = 0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class NullTracer:
    """The default tracer: records nothing, allocates nothing."""

    enabled = False
    dropped = 0

    def span(self, name: str, **attrs: object) -> _NoopSpan:
        return _NOOP_SPAN

    def absorb(self, payloads: Iterable[Dict[str, object]], parent_id: int = 0) -> None:
        pass

    def current_span_id(self) -> int:
        return 0

    def export(self) -> List[Dict[str, object]]:
        return []


class Tracer:
    """A recording tracer: span nesting follows a per-thread stack, so a
    campaign running in a service executor thread and a solver running in
    the main thread never corrupt each other's parentage.

    ``max_spans`` bounds memory on pathological runs; spans beyond the
    bound are counted in ``dropped`` instead of recorded (the trace file
    says so in its metadata)."""

    enabled = True

    def __init__(self, max_spans: int = 250_000) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> int:
        stack = self._stack()
        return stack[-1] if stack else 0

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        return _ActiveSpan(self, name, attrs)

    def _open(self, active: _ActiveSpan) -> None:
        stack = self._stack()
        active.span_id = next(self._ids)
        active.parent_id = stack[-1] if stack else 0
        stack.append(active.span_id)
        active.start_ns = time.perf_counter_ns()

    def _close(self, active: _ActiveSpan, failed: bool = False) -> None:
        end_ns = time.perf_counter_ns()
        stack = self._stack()
        if stack and stack[-1] == active.span_id:
            stack.pop()
        elif active.span_id in stack:  # defensive: mis-nested exit
            stack.remove(active.span_id)
        attrs = active.attrs
        if failed:
            attrs = dict(attrs, error=True)
        with self._lock:
            if len(self.spans) >= self._max_spans:
                self.dropped += 1
                return
            self.spans.append(
                Span(
                    name=active.name,
                    span_id=active.span_id,
                    parent_id=active.parent_id,
                    start_ns=active.start_ns,
                    end_ns=end_ns,
                    pid=os.getpid(),
                    attrs=attrs,
                )
            )

    def absorb(
        self, payloads: Iterable[Dict[str, object]], parent_id: int = 0
    ) -> None:
        """Graft spans recorded elsewhere (a pool worker) into this trace.

        Span ids are remapped into this tracer's id space — two workers
        both starting their counters at 1 must not collide — and foreign
        roots (parent unknown here) are re-parented under ``parent_id``,
        typically the campaign span that dispatched the job."""
        foreign = [Span.from_payload(p) for p in payloads]
        if not foreign:
            return
        with self._lock:
            mapping = {span.span_id: next(self._ids) for span in foreign}
            for span in foreign:
                if len(self.spans) >= self._max_spans:
                    self.dropped += 1
                    continue
                self.spans.append(
                    Span(
                        name=span.name,
                        span_id=mapping[span.span_id],
                        parent_id=mapping.get(span.parent_id, parent_id),
                        start_ns=span.start_ns,
                        end_ns=span.end_ns,
                        pid=span.pid,
                        attrs=span.attrs,
                    )
                )

    def export(self) -> List[Dict[str, object]]:
        """Every recorded span as a payload dict, in start order."""
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s.start_ns, s.span_id))
        return [span.to_payload() for span in spans]


# -- the process-global tracer ------------------------------------------------

_TRACER: object = NullTracer()


def get_tracer():
    """The process-global tracer (a :class:`NullTracer` unless tracing was
    turned on with :func:`set_tracer`)."""
    return _TRACER


def set_tracer(tracer) -> object:
    """Install ``tracer`` process-wide; returns the previous one so callers
    can restore it (``previous = set_tracer(t) ... set_tracer(previous)``)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


# -- exporters ----------------------------------------------------------------


def chrome_trace(payloads: Sequence[Dict[str, object]], dropped: int = 0) -> Dict[str, object]:
    """Span payloads as a Chrome trace-event document (the ``{"traceEvents":
    [...]}`` format Perfetto and ``chrome://tracing`` open directly).

    Each span becomes one complete ("X") event; timestamps are rebased to
    the earliest span so the view starts at t=0.  ``pid``/``tid`` are the
    recording process id, which gives one track per worker process and
    makes nesting-by-time-containment render the span tree per worker."""
    base_ns = min((int(p["start_ns"]) for p in payloads), default=0)
    events = []
    for payload in payloads:
        start_ns = int(payload["start_ns"])
        duration_ns = max(int(payload["end_ns"]) - start_ns, 1)
        args = dict(payload.get("attrs", {}))
        args["span_id"] = payload.get("span_id", 0)
        args["parent_id"] = payload.get("parent_id", 0)
        events.append(
            {
                "name": str(payload.get("name", "")),
                "cat": "repro",
                "ph": "X",
                "ts": (start_ns - base_ns) / 1000.0,
                "dur": duration_ns / 1000.0,
                "pid": int(payload.get("pid", 0)),
                "tid": int(payload.get("pid", 0)),
                "args": args,
            }
        )
    document: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if dropped:
        document["otherData"] = {"dropped_spans": dropped}
    return document


def write_trace(path: str, tracer, indent: Optional[int] = None) -> int:
    """Write a tracer's spans to ``path``: JSONL (one span payload per
    line) for ``.jsonl`` paths, Chrome trace-event JSON otherwise.
    Returns the number of spans written."""
    payloads = tracer.export()
    if path.endswith(".jsonl"):
        with open(path, "w", encoding="utf-8") as handle:
            for payload in payloads:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
    else:
        document = chrome_trace(payloads, dropped=getattr(tracer, "dropped", 0))
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=indent)
            handle.write("\n")
    return len(payloads)
