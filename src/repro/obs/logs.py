"""Logging setup for the CLI and the resident service.

Everything under the ``repro`` logger hierarchy (modules use
``logging.getLogger(__name__)``, which nests under it) goes through one
handler configured here.  Two formats:

* default — ``warning: <message>``, byte-compatible with the bare
  ``print(..., file=sys.stderr)`` diagnostics it replaced, so scripts
  grepping CLI stderr keep working;
* verbose (``-v`` / ``--log-level``) — timestamped
  ``2026-08-07 12:00:00 warning repro.cli: <message>`` lines, the shape
  a resident service's log collector wants.

The handler resolves ``sys.stderr`` at emit time, not at configure time:
a long-lived process (or a pytest ``capsys`` capture) that swaps the
stream mid-run must see later records on the *current* stderr.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["configure_logging", "get_logger"]

ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _StderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is when the record is emitted."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            message = self.format(record)
            stream = sys.stderr
            stream.write(message + "\n")
        except Exception:  # a broken stderr must never take down the run
            self.handleError(record)


class _LowercaseLevelFormatter(logging.Formatter):
    """Formats levelname in lowercase so default-format warnings read
    ``warning: ...`` exactly like the prints they replaced."""

    def format(self, record: logging.LogRecord) -> str:
        record.levellower = record.levelname.lower()
        return super().format(record)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.  Accepts both bare
    (``"cli"``) and already-qualified (``"repro.cli"``, i.e. a module's
    ``__name__``) names."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    level: Optional[str] = None, verbosity: int = 0
) -> logging.Logger:
    """Install the ``repro`` handler.

    ``level`` is an explicit level name (``--log-level``); ``verbosity``
    is the count of ``-v`` flags (one or more means DEBUG).  With neither,
    the level is INFO and the format is the print-compatible default;
    with either, records carry timestamps and logger names.

    Idempotent: reconfiguring replaces the previously installed handler
    instead of stacking a second one (every CLI entry calls this)."""
    logger = logging.getLogger(ROOT_LOGGER)
    if level is not None:
        resolved = _LEVELS[level.lower()]
    elif verbosity > 0:
        resolved = logging.DEBUG
    else:
        resolved = logging.INFO
    verbose = level is not None or verbosity > 0
    if verbose:
        formatter = _LowercaseLevelFormatter(
            "%(asctime)s %(levellower)s %(name)s: %(message)s",
            datefmt="%Y-%m-%d %H:%M:%S",
        )
    else:
        formatter = _LowercaseLevelFormatter("%(levellower)s: %(message)s")
    handler = _StderrHandler()
    handler.setFormatter(formatter)
    for existing in list(logger.handlers):
        if isinstance(existing, _StderrHandler):
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(resolved)
    logger.propagate = False
    return logger
