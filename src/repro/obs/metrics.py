"""A small metrics registry: labeled counters, gauges and histograms with
Prometheus text exposition.

This is the aggregation backend behind the repo's hand-threaded counter
plumbing.  The picklable counter structs themselves
(:class:`~repro.solver.result.SolverStats` fields riding in
``JobReport``, rolled up by ``CampaignStats.absorb``) stay exactly what
they are — per-run deltas that must cross process boundaries and
rehydrate from cached payloads, which a process-global registry cannot
do.  Instead, the campaign driver publishes every finished report and
every finished campaign into the registry at well-defined points
(:func:`record_job_report`, :func:`record_campaign_stats`), and the
resident service's scheduler counters are *literally* registry series
(see ``repro.serve.scheduler``).  The ``metrics`` protocol verb renders
it all as Prometheus text.

Like tracing, metrics are write-only telemetry: nothing in the engine
reads them back, so they can never move an answer.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "record_job_report",
    "record_campaign_stats",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds): the engine's job walls sit in the
#: milliseconds-to-seconds band the paper reports, so the resolution
#: concentrates there.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Metric:
    """Common shape: a named family of labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def header_lines(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def set_value(self, value: float, **labels: object) -> None:
        """Internal backdoor for mapping-style wrappers (the serve
        scheduler's ``counters[key] += 1`` pattern); not part of the
        Prometheus counter contract."""
        with self._lock:
            self._series[_label_key(labels)] = value

    def render(self) -> List[str]:
        lines = self.header_lines()
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{_render_labels(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def render(self) -> List[str]:
        lines = self.header_lines()
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{_render_labels(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, bucket_count: int) -> None:
        self.bucket_counts = [0] * bucket_count
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(buckets))
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1
            series.total += value
            series.count += 1

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series is not None else 0.0

    def render(self) -> List[str]:
        lines = self.header_lines()
        with self._lock:
            for key in sorted(self._series):
                series = self._series[key]
                for bound, count in zip(self.buckets, series.bucket_counts):
                    lines.append(
                        f"{self.name}_bucket"
                        f"{_render_labels(key, (('le', repr(bound)),))} {count}"
                    )
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, (('le', '+Inf'),))} {series.count}"
                )
                lines.append(
                    f"{self.name}_sum{_render_labels(key)} "
                    f"{_format_value(series.total)}"
                )
                lines.append(
                    f"{self.name}_count{_render_labels(key)} {series.count}"
                )
        return lines


class MetricsRegistry:
    """Named metric families with get-or-create access.  Asking twice for
    the same name returns the same family; asking with a conflicting kind
    is a programming error and raises."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Metric]" = {}

    def _family(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            family = cls(name, help_text, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._family(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._family(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._family(Histogram, name, help_text, buckets=buckets)

    def render_prometheus(self) -> str:
        """Every family in the Prometheus text exposition format, families
        in name order."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")


# -- the process-global registry ----------------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry campaign/planner/store metrics land in."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (tests)."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry()
    return _REGISTRY


# -- publication points -------------------------------------------------------
#
# Called by the campaign driver; one call per report / per campaign, so
# registry totals stay exact multiples of what the hand-threaded stats say.


def ensure_core_families(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Register the core families (at zero) so a scrape before any run
    still shows them — a service that has done nothing must expose
    ``repro_degraded_operations_total 0``, not an empty page."""
    registry = registry or get_registry()
    jobs = registry.counter(
        "repro_jobs_total", "Campaign job reports by outcome."
    )
    for outcome in ("executed", "error", "symmetry_instantiated", "delta_spliced"):
        jobs.inc(0, outcome=outcome)
    checks = registry.counter(
        "repro_solver_checks_total",
        "Solver checks by the cache tier that answered.",
    )
    for tier in ("fast_path", "cache_hit", "shared_hit", "full_solve"):
        checks.inc(0, tier=tier)
    registry.counter(
        "repro_degraded_operations_total",
        "Best-effort operations absorbed by a degrade path.",
    ).inc(0)
    registry.counter(
        "repro_campaigns_total", "Finished verification campaigns."
    ).inc(0)
    registry.histogram(
        "repro_job_seconds", "Wall-clock seconds per executed engine job."
    )
    registry.histogram(
        "repro_store_publish_seconds",
        "Wall-clock seconds per campaign store publish.",
    )
    registry.histogram(
        "repro_stream_first_result_seconds",
        "Seconds from plan execution start to the first streamed result.",
    )
    return registry


def record_job_report(report) -> None:
    """Publish one finished :class:`~repro.core.campaign.JobReport` into
    the global registry (called by the campaign driver as each report —
    executed, instantiated or spliced — becomes final)."""
    registry = get_registry()
    if report.error is not None:
        outcome = "error"
    elif report.delta_spliced_from:
        outcome = "delta_spliced"
    elif report.symmetry_instantiated_from:
        outcome = "symmetry_instantiated"
    else:
        outcome = "executed"
    registry.counter(
        "repro_jobs_total", "Campaign job reports by outcome."
    ).inc(outcome=outcome)
    if outcome != "executed":
        return
    registry.histogram(
        "repro_job_seconds", "Wall-clock seconds per executed engine job."
    ).observe(report.elapsed_seconds)
    checks = registry.counter(
        "repro_solver_checks_total",
        "Solver checks by the cache tier that answered.",
    )
    checks.inc(report.solver_fast_paths, tier="fast_path")
    checks.inc(report.solver_cache_hits, tier="cache_hit")
    checks.inc(report.solver_shared_cache_hits, tier="shared_hit")
    checks.inc(report.solver_cache_misses, tier="full_solve")
    registry.counter(
        "repro_solver_seconds_total", "Seconds spent inside the solver."
    ).inc(report.solver_time_seconds)
    registry.counter(
        "repro_shared_round_trips_total",
        "Round-trips to the process-shared verdict tier.",
    ).inc(report.solver_shared_round_trips)
    registry.counter(
        "repro_shared_publish_entries_total",
        "Verdicts published to the process-shared tier.",
    ).inc(report.solver_shared_publish_entries)


def record_campaign_stats(stats) -> None:
    """Publish one finished campaign's aggregated
    :class:`~repro.core.queries.CampaignStats` — the campaign-scoped
    counters that have no per-report home (symmetry skips, store traffic,
    degraded operations)."""
    registry = get_registry()
    registry.counter(
        "repro_campaigns_total", "Finished verification campaigns."
    ).inc()
    registry.counter(
        "repro_jobs_skipped_total",
        "Jobs answered without execution, by mechanism.",
    ).inc(stats.jobs_skipped_by_symmetry, reason="symmetry")
    registry.counter(
        "repro_degraded_operations_total",
        "Best-effort operations absorbed by a degrade path.",
    ).inc(stats.degraded_operations)
    store = registry.counter(
        "repro_store_entries_total", "Verdict-store entries by direction."
    )
    store.inc(stats.store_entries_loaded, direction="loaded")
    store.inc(stats.store_entries_published, direction="published")
