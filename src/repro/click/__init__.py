"""Click modular router support.

The paper models "a large subset of the elements of the Click modular
router" in SEFL so that arbitrary Click configurations can be verified
out-of-the-box and so that more complex boxes (firewalls, NATs, the CISCO
ASA) can be assembled from them.  This package provides:

* :mod:`repro.click.elements` — SEFL models for the commonly used elements
  (IPMirror, DecIPTTL, HostEtherFilter, IPClassifier, IPRewriter, EtherEncap,
  Strip, CheckIPHeader, VLAN encap/decap, …);
* :mod:`repro.click.parser` — a parser for Click configuration files that
  instantiates those models and wires them into a :class:`repro.network.Network`.
"""

from repro.click.elements import (
    CLICK_ELEMENT_REGISTRY,
    build_check_ip_header,
    build_dec_ip_ttl,
    build_discard,
    build_drop_broadcasts,
    build_ether_encap,
    build_host_ether_filter,
    build_ip_classifier,
    build_ip_filter,
    build_ip_mirror_element,
    build_ip_rewriter,
    build_queue,
    build_strip_ether,
    build_vlan_decap,
    build_vlan_encap,
)
from repro.click.parser import ClickParseError, parse_click_config

__all__ = [
    "CLICK_ELEMENT_REGISTRY",
    "ClickParseError",
    "build_check_ip_header",
    "build_dec_ip_ttl",
    "build_discard",
    "build_drop_broadcasts",
    "build_ether_encap",
    "build_host_ether_filter",
    "build_ip_classifier",
    "build_ip_filter",
    "build_ip_mirror_element",
    "build_ip_rewriter",
    "build_queue",
    "build_strip_ether",
    "build_vlan_decap",
    "build_vlan_encap",
    "parse_click_config",
]
