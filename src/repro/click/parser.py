"""Parser for (a practical subset of) Click configuration files.

The paper's toolchain takes a Click configuration, generates a SEFL model
for each element and connects the models according to the config.  This
parser supports the declaration and connection syntax used by such
configurations::

    // comment
    src :: HostEtherFilter(00:aa:00:aa:00:aa);
    ttl :: DecIPTTL;
    cls :: IPClassifier(proto=6 dst_port=80, proto=17);
    src -> ttl;
    ttl [0] -> [0] cls;

Element classes are resolved against :data:`CLICK_ELEMENT_REGISTRY`; filter
arguments for ``IPClassifier`` / ``IPFilter`` use ``key=value`` pairs
(``src`` / ``dst`` prefixes, ``proto``, ``src_port`` / ``dst_port``) instead
of Click's free-form tcpdump-like syntax.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.click.elements import CLICK_ELEMENT_REGISTRY
from repro.network.topology import Network

_DECLARATION = re.compile(
    r"^(?P<name>[A-Za-z_][\w.]*)\s*::\s*(?P<cls>[A-Za-z_]\w*)\s*(\((?P<args>.*)\))?$"
)
_CONNECTION = re.compile(
    r"^(?P<src>[A-Za-z_][\w.]*)\s*(\[(?P<srcport>\d+)\])?\s*->"
    r"\s*(\[(?P<dstport>\d+)\])?\s*(?P<dst>[A-Za-z_][\w.]*)$"
)


class ClickParseError(Exception):
    """Raised when a configuration cannot be parsed or instantiated."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", "", text)
    return text


def _split_args(args: str) -> List[str]:
    """Split an argument list on top-level commas."""
    parts: List[str] = []
    depth = 0
    current = []
    for char in args:
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
            continue
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


def _parse_scalar(token: str):
    token = token.strip().strip('"').strip("'")
    if re.fullmatch(r"0x[0-9a-fA-F]+", token):
        return int(token, 16)
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    return token


def _parse_filter_spec(token: str) -> Dict[str, object]:
    """Parse ``proto=6 dst_port=80 dst=10.0.0.0/8`` into a filter spec."""
    spec: Dict[str, object] = {}
    for pair in token.split():
        if "=" not in pair:
            raise ClickParseError(f"malformed filter clause {pair!r} in {token!r}")
        key, _, value = pair.partition("=")
        key = key.strip()
        value = value.strip()
        if key in ("src", "dst"):
            spec[key] = value
        elif key in ("proto", "src_port", "dst_port"):
            if "-" in value:
                low, _, high = value.partition("-")
                spec[key] = (int(low), int(high))
            else:
                spec[key] = int(value)
        else:
            raise ClickParseError(f"unsupported filter key {key!r}")
    return spec


def _instantiate(name: str, cls: str, raw_args: Optional[str]):
    if cls not in CLICK_ELEMENT_REGISTRY:
        raise ClickParseError(f"unknown Click element class {cls!r}")
    builder = CLICK_ELEMENT_REGISTRY[cls]
    args = _split_args(raw_args) if raw_args else []

    if cls in ("IPClassifier",):
        filters = [_parse_filter_spec(arg) for arg in args]
        return builder(name, filters)
    if cls in ("IPFilter",):
        rules: List[Tuple[str, Dict[str, object]]] = []
        for arg in args:
            action, _, rest = arg.partition(" ")
            if action not in ("allow", "deny"):
                raise ClickParseError(
                    f"IPFilter rules must start with allow/deny: {arg!r}"
                )
            rules.append((action, _parse_filter_spec(rest)))
        return builder(name, rules)

    parsed = [_parse_scalar(arg) for arg in args]
    try:
        return builder(name, *parsed)
    except TypeError as exc:
        raise ClickParseError(
            f"bad arguments for {cls}({raw_args or ''}): {exc}"
        ) from exc


def parse_click_config(text: str, network: Optional[Network] = None) -> Network:
    """Parse a Click configuration and return the corresponding network.

    Elements become :class:`NetworkElement` instances built from the SEFL
    models in :mod:`repro.click.elements`; ``a -> b`` connections become
    unidirectional links from ``a``'s output port to ``b``'s input port
    (Click port indices map to the conventional ``outN`` / ``inN`` names).
    """
    network = network if network is not None else Network("click-config")
    statements = [
        statement.strip()
        for statement in _strip_comments(text).split(";")
        if statement.strip()
    ]
    pending_connections: List[Tuple[str, str, str, str]] = []

    for statement in statements:
        declaration = _DECLARATION.match(statement)
        if declaration:
            element = _instantiate(
                declaration.group("name"),
                declaration.group("cls"),
                declaration.group("args"),
            )
            network.add_element(element)
            continue
        connection = _CONNECTION.match(statement)
        if connection:
            src_port = f"out{connection.group('srcport') or 0}"
            dst_port = f"in{connection.group('dstport') or 0}"
            pending_connections.append(
                (connection.group("src"), src_port, connection.group("dst"), dst_port)
            )
            continue
        raise ClickParseError(f"cannot parse statement: {statement!r}")

    for src, src_port, dst, dst_port in pending_connections:
        if not network.has_element(src) or not network.has_element(dst):
            raise ClickParseError(f"connection references unknown element: {src} -> {dst}")
        network.add_link((src, src_port), (dst, dst_port))
    return network
