"""SEFL models of Click modular router elements.

Each builder returns a :class:`repro.network.NetworkElement`.  Where the
paper's conformance testing (§8.3) uncovered a bug in an early model
(DecIPTTL wrap-around, IPMirror forgetting the ports, HostEtherFilter
checking the wrong field), both the *buggy* and the *fixed* variants are
provided so the testing framework can demonstrate the catch.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.models.mirror import mirror_program
from repro.network.element import NetworkElement, WILDCARD_PORT
from repro.sefl.expressions import And, Condition, Eq, Ge, Le, Minus, Ne, OneOf, Or
from repro.sefl.fields import (
    ETHER_HEADER_BITS,
    ETHERTYPE_IP,
    ETHERTYPE_VLAN,
    EtherDst,
    EtherSrc,
    EtherType,
    IpDst,
    IpProto,
    IpSrc,
    IpTtl,
    IpVersion,
    Tag,
    TcpDst,
    TcpSrc,
    VLAN_TAG_BITS,
    VlanId,
    VlanTpid,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.sefl.instructions import (
    Allocate,
    Assign,
    Constrain,
    CreateTag,
    Deallocate,
    Fail,
    Fork,
    Forward,
    If,
    Instruction,
    InstructionBlock,
    LOCAL,
    NoOp,
)
from repro.sefl.util import ip_to_number, mac_to_number, parse_prefix
from repro.solver.intervals import IntervalSet, prefix_to_interval

BROADCAST_MAC = (1 << 48) - 1


# ---------------------------------------------------------------------------
# Simple pass-through / drop elements
# ---------------------------------------------------------------------------


def build_queue(name: str) -> NetworkElement:
    """``Queue`` / ``SimpleQueue``: functionally a wire for static analysis."""
    element = NetworkElement(name, ["in0"], ["out0"], kind="Queue")
    element.set_input_program("in0", Forward("out0"))
    return element


def build_discard(name: str) -> NetworkElement:
    """``Discard``: every packet is dropped."""
    element = NetworkElement(name, ["in0"], [], kind="Discard")
    element.set_input_program("in0", Fail("discarded"))
    return element


def build_drop_broadcasts(name: str) -> NetworkElement:
    """``DropBroadcasts``: drop Ethernet broadcast frames."""
    element = NetworkElement(name, ["in0"], ["out0"], kind="DropBroadcasts")
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(Ne(EtherDst, BROADCAST_MAC)),
            Forward("out0"),
        ),
    )
    return element


# ---------------------------------------------------------------------------
# Header sanity / filtering elements
# ---------------------------------------------------------------------------


def build_check_ip_header(name: str) -> NetworkElement:
    """``CheckIPHeader``: verify the packet is a sane IPv4 packet."""
    element = NetworkElement(name, ["in0"], ["out0"], kind="CheckIPHeader")
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(Eq(EtherType, ETHERTYPE_IP)),
            Constrain(Eq(IpVersion, 4)),
            Constrain(Ne(IpSrc, 0)),
            Forward("out0"),
        ),
    )
    return element


def build_host_ether_filter(
    name: str, mac: Union[int, str], buggy: bool = False
) -> NetworkElement:
    """``HostEtherFilter``: only accept frames destined to this host's MAC.

    ``buggy=True`` reproduces the modeling bug of §8.3 where the *EtherType*
    field was checked instead of the destination address.
    """
    mac_value = mac_to_number(mac) if isinstance(mac, str) else mac
    element = NetworkElement(name, ["in0"], ["out0"], kind="HostEtherFilter")
    checked_field = EtherType if buggy else EtherDst
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(Eq(checked_field, mac_value)),
            Forward("out0"),
        ),
    )
    return element


def build_dec_ip_ttl(name: str, buggy: bool = False) -> NetworkElement:
    """``DecIPTTL``: decrement the TTL, dropping packets that would expire.

    The correct model constrains ``TTL >= 1`` *before* decrementing.  The
    buggy variant decrements first and then requires the result to be
    positive — on an unsigned field the value wraps around instead of going
    negative, so packets with TTL 0 are never dropped; this is the bug the
    paper found through SymNet reporting a single path instead of two.
    """
    element = NetworkElement(name, ["in0"], ["out0"], kind="DecIPTTL")
    if buggy:
        program = InstructionBlock(
            Assign(IpTtl, Minus(IpTtl, 1)),
            Constrain(Ge(IpTtl, 1)),
            Forward("out0"),
        )
    else:
        program = InstructionBlock(
            Constrain(Ge(IpTtl, 1)),
            Assign(IpTtl, Minus(IpTtl, 1)),
            Forward("out0"),
        )
    element.set_input_program("in0", program)
    return element


def build_ip_mirror_element(
    name: str, buggy: bool = False
) -> NetworkElement:
    """``IPMirror``: swap source/destination addresses and ports.

    ``buggy=True`` reproduces the incomplete model of §8.3 that only mirrored
    the IP addresses and forgot the transport ports.
    """
    element = NetworkElement(name, ["in0"], ["out0"], kind="IPMirror")
    element.set_input_program("in0", mirror_program(swap_ports=not buggy))
    return element


# ---------------------------------------------------------------------------
# Classification elements
# ---------------------------------------------------------------------------


FilterSpec = Mapping[str, object]


def _filter_condition(spec: FilterSpec) -> Condition:
    """Translate a classifier filter spec into a SEFL condition.

    Supported keys: ``src`` / ``dst`` (prefix strings), ``proto`` (int),
    ``src_port`` / ``dst_port`` (int or ``(low, high)`` range).
    """
    clauses: List[Condition] = []
    if "src" in spec:
        address, plen = parse_prefix(str(spec["src"]))
        interval = prefix_to_interval(address, plen)
        clauses.append(OneOf(IpSrc, IntervalSet([(interval.lo, interval.hi)])))
    if "dst" in spec:
        address, plen = parse_prefix(str(spec["dst"]))
        interval = prefix_to_interval(address, plen)
        clauses.append(OneOf(IpDst, IntervalSet([(interval.lo, interval.hi)])))
    if "proto" in spec:
        clauses.append(Eq(IpProto, int(spec["proto"])))  # type: ignore[arg-type]
    for key, field in (("src_port", TcpSrc), ("dst_port", TcpDst)):
        if key in spec:
            value = spec[key]
            if isinstance(value, tuple):
                clauses.append(OneOf(field, IntervalSet([value])))
            else:
                clauses.append(Eq(field, int(value)))  # type: ignore[arg-type]
    if not clauses:
        return Eq(0, 0)
    return And(*clauses) if len(clauses) > 1 else clauses[0]


def build_ip_classifier(
    name: str, filters: Sequence[FilterSpec]
) -> NetworkElement:
    """``IPClassifier``: forward each packet to the output port of the first
    filter it matches; unmatched packets are dropped.

    The model uses egress filtering: the packet is forked to every output
    port and port *k* constrains the packet to match filter *k* and none of
    the earlier filters — optimal branching with mutually exclusive
    constraints, the same trick used for switches.
    """
    ports = [f"out{i}" for i in range(len(filters))]
    element = NetworkElement(name, ["in0"], ports, kind="IPClassifier")
    element.set_input_program("in0", Fork(*ports))
    from repro.sefl.expressions import Not as SeflNot

    for index, spec in enumerate(filters):
        conditions: List[Condition] = [
            SeflNot(_filter_condition(earlier)) for earlier in filters[:index]
        ]
        conditions.append(_filter_condition(spec))
        program = InstructionBlock(
            *[Constrain(condition) for condition in conditions]
        )
        element.set_output_program(f"out{index}", program)
    return element


def build_ip_filter(
    name: str, rules: Sequence[Tuple[str, FilterSpec]]
) -> NetworkElement:
    """``IPFilter``: ordered allow/deny rules over the five-tuple."""
    element = NetworkElement(name, ["in0"], ["out0"], kind="IPFilter")
    program: Instruction = Fail("denied by IPFilter default policy")
    for action, spec in reversed(list(rules)):
        verdict: Instruction = (
            Forward("out0") if action == "allow" else Fail("denied by IPFilter rule")
        )
        program = If(_filter_condition(spec), verdict, program)
    element.set_input_program("in0", program)
    return element


# ---------------------------------------------------------------------------
# Stateful rewriting (IPRewriter)
# ---------------------------------------------------------------------------


def build_ip_rewriter(
    name: str,
    constrain_distinct_endpoints: bool = True,
) -> NetworkElement:
    """``IPRewriter`` configured as a stateful firewall (the §8.3 setup).

    Traffic from the inside network arrives on input 0 and is emitted on
    output 0 after its flow is recorded in local metadata.  Outside traffic
    arrives on input 1 and is emitted on output 1 only when it matches a
    recorded flow (reversed five-tuple); everything else is dropped.

    ``constrain_distinct_endpoints`` applies the fix for the cycle found in
    §8.3: with fully symbolic packets the source and destination endpoints
    may be equal, in which case mirrored return traffic also matches the
    *forward* mapping and loops forever; constraining the endpoints to differ
    removes the false cycle.
    """
    element = NetworkElement(
        name, ["in0", "in1"], ["out0", "out1"], kind="IPRewriter"
    )

    outgoing = [
        Constrain(Or(Eq(IpProto, PROTO_TCP), Eq(IpProto, PROTO_UDP))),
        Allocate("rw-src-ip", 32, LOCAL),
        Allocate("rw-dst-ip", 32, LOCAL),
        Allocate("rw-src-port", 16, LOCAL),
        Allocate("rw-dst-port", 16, LOCAL),
        Assign("rw-src-ip", IpSrc),
        Assign("rw-dst-ip", IpDst),
        Assign("rw-src-port", TcpSrc),
        Assign("rw-dst-port", TcpDst),
        Forward("out0"),
    ]
    if constrain_distinct_endpoints:
        outgoing.insert(1, Constrain(Ne(IpSrc, IpDst)))
    element.set_input_program("in0", InstructionBlock(*outgoing))

    # Outside traffic: a packet that matches the *forward* mapping is treated
    # as more outgoing traffic of that flow and re-emitted on output 0 (this
    # is what creates the cycle of Figure 9(a') when source and destination
    # endpoints may coincide); otherwise it must match the reverse mapping to
    # be admitted on output 1.
    incoming = InstructionBlock(
        Constrain(Or(Eq(IpProto, PROTO_TCP), Eq(IpProto, PROTO_UDP))),
        If(
            And(
                Eq(IpSrc, "rw-src-ip"),
                Eq(IpDst, "rw-dst-ip"),
                Eq(TcpSrc, "rw-src-port"),
                Eq(TcpDst, "rw-dst-port"),
            ),
            Forward("out0"),
            InstructionBlock(
                Constrain(Eq(IpSrc, "rw-dst-ip")),
                Constrain(Eq(IpDst, "rw-src-ip")),
                Constrain(Eq(TcpSrc, "rw-dst-port")),
                Constrain(Eq(TcpDst, "rw-src-port")),
                Forward("out1"),
            ),
        ),
    )
    element.set_input_program("in1", incoming)
    return element


# ---------------------------------------------------------------------------
# Encapsulation elements
# ---------------------------------------------------------------------------


def build_ether_encap(
    name: str,
    ethertype: int = ETHERTYPE_IP,
    src: Union[int, str] = 0,
    dst: Union[int, str] = 0,
) -> NetworkElement:
    """``EtherEncap``: prepend an Ethernet header in front of the L3 header."""
    src_value = mac_to_number(src) if isinstance(src, str) else src
    dst_value = mac_to_number(dst) if isinstance(dst, str) else dst
    element = NetworkElement(name, ["in0"], ["out0"], kind="EtherEncap")
    base = Tag("L3") - ETHER_HEADER_BITS
    element.set_input_program(
        "in0",
        InstructionBlock(
            Allocate(base + EtherDst.offset, EtherDst.width),
            Assign(base + EtherDst.offset, dst_value),
            Allocate(base + EtherSrc.offset, EtherSrc.width),
            Assign(base + EtherSrc.offset, src_value),
            Allocate(base + EtherType.offset, EtherType.width),
            Assign(base + EtherType.offset, ethertype),
            CreateTag("L2", base),
            Forward("out0"),
        ),
    )
    return element


def build_strip_ether(name: str) -> NetworkElement:
    """``Strip(14)``: remove the Ethernet header (deallocate its fields and
    destroy the L2 tag)."""
    element = NetworkElement(name, ["in0"], ["out0"], kind="Strip")
    element.set_input_program(
        "in0",
        InstructionBlock(
            Deallocate(EtherDst, EtherDst.width),
            Deallocate(EtherSrc, EtherSrc.width),
            Deallocate(EtherType, EtherType.width),
            Forward("out0"),
        ),
    )
    return element


def build_vlan_encap(name: str, vlan_id: int) -> NetworkElement:
    """``VLANEncap``: insert an 802.1Q tag between Ethernet and IP.

    The model allocates the VLAN fields right after the Ethernet header
    (where the tag sits on the wire), rewrites the EtherType to 0x8100 and
    records the VLAN id.
    """
    element = NetworkElement(name, ["in0"], ["out0"], kind="VLANEncap")
    base = Tag("L2") + ETHER_HEADER_BITS
    element.set_input_program(
        "in0",
        InstructionBlock(
            CreateTag("VLAN", base),
            Allocate(VlanTpid, VlanTpid.width),
            Assign(VlanTpid, ETHERTYPE_VLAN),
            Allocate(VlanId, VlanId.width),
            Assign(VlanId, vlan_id),
            # The outer EtherType now announces a VLAN tag.
            Assign(EtherType, ETHERTYPE_VLAN),
            Forward("out0"),
        ),
    )
    return element


def build_vlan_decap(
    name: str, restore_ethertype: int = ETHERTYPE_IP, buggy: bool = False
) -> NetworkElement:
    """``VLANDecap``: remove the 802.1Q tag.

    The correct model requires the frame to actually carry a VLAN tag and
    restores the inner EtherType.  With ``buggy=True`` the EtherType is left
    at 0x8100 after decapsulation — the missing-VLAN-tagging bug from the
    Split-TCP deployment (§8.4) where downstream boxes then drop the frame.
    """
    element = NetworkElement(name, ["in0"], ["out0"], kind="VLANDecap")
    instructions = [
        Constrain(Eq(EtherType, ETHERTYPE_VLAN)),
        Deallocate(VlanTpid, VlanTpid.width),
        Deallocate(VlanId, VlanId.width),
    ]
    if not buggy:
        instructions.append(Assign(EtherType, restore_ethertype))
    instructions.append(Forward("out0"))
    element.set_input_program("in0", InstructionBlock(*instructions))
    return element


def build_ether_rewrite(
    name: str, dst: Union[int, str], src: Optional[Union[int, str]] = None
) -> NetworkElement:
    """Rewrite the Ethernet destination (and optionally source) address —
    this is how the Split-TCP redirection router steers traffic to the proxy
    (§8.4)."""
    dst_value = mac_to_number(dst) if isinstance(dst, str) else dst
    element = NetworkElement(name, ["in0"], ["out0"], kind="EtherRewrite")
    instructions: List[Instruction] = [Assign(EtherDst, dst_value)]
    if src is not None:
        src_value = mac_to_number(src) if isinstance(src, str) else src
        instructions.append(Assign(EtherSrc, src_value))
    instructions.append(Forward("out0"))
    element.set_input_program("in0", InstructionBlock(*instructions))
    return element


# ---------------------------------------------------------------------------
# Registry used by the Click configuration parser
# ---------------------------------------------------------------------------

CLICK_ELEMENT_REGISTRY = {
    "Queue": build_queue,
    "SimpleQueue": build_queue,
    "Discard": build_discard,
    "DropBroadcasts": build_drop_broadcasts,
    "CheckIPHeader": build_check_ip_header,
    "HostEtherFilter": build_host_ether_filter,
    "DecIPTTL": build_dec_ip_ttl,
    "IPMirror": build_ip_mirror_element,
    "IPClassifier": build_ip_classifier,
    "IPFilter": build_ip_filter,
    "IPRewriter": build_ip_rewriter,
    "EtherEncap": build_ether_encap,
    "Strip": build_strip_ether,
    "VLANEncap": build_vlan_encap,
    "VLANDecap": build_vlan_decap,
    "EtherRewrite": build_ether_rewrite,
}
