"""One client connection: a read loop feeding the service, a writer task
draining an outgoing queue.

The outgoing queue is the seam that makes streaming safe: the scheduler's
executor thread posts messages with ``loop.call_soon_threadsafe(
session.send_nowait, message)``, and the single writer task serialises
them onto the socket — no two coroutines ever interleave writes on one
connection, and a slow client only backs up its own queue.
"""

from __future__ import annotations

import asyncio
from typing import Dict

from repro.serve import protocol

#: Generous per-line cap: a query batch is text, not bulk data.
MAX_LINE_BYTES = 1 << 20

_CLOSE = object()


class Session:
    """The per-connection protocol driver (see module docs)."""

    def __init__(self, service, reader, writer) -> None:
        self.service = service
        self.reader = reader
        self.writer = writer
        self.outgoing: asyncio.Queue = asyncio.Queue()

    def send_nowait(self, message: Dict[str, object]) -> None:
        """Queue one response (callable from the event loop only; executor
        threads go through ``call_soon_threadsafe``)."""
        self.outgoing.put_nowait(message)

    async def _writer_loop(self) -> None:
        while True:
            message = await self.outgoing.get()
            if message is _CLOSE:
                return
            try:
                self.writer.write(protocol.encode(message))
                await self.writer.drain()
            except (ConnectionError, OSError):
                # The client went away; drop the rest of its answers.
                return

    async def run(self) -> None:
        writer_task = asyncio.get_running_loop().create_task(
            self._writer_loop()
        )
        try:
            while True:
                try:
                    line = await self.reader.readline()
                except (ConnectionError, OSError, asyncio.LimitOverrunError):
                    break
                except asyncio.CancelledError:
                    # Server shutdown cancelling live sessions: unwind
                    # through the flush-and-close path below.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                if len(line) > MAX_LINE_BYTES:
                    self.send_nowait(
                        protocol.error("", "request line too long")
                    )
                    continue
                try:
                    message = protocol.decode_line(line)
                except protocol.ProtocolError as exc:
                    self.send_nowait(protocol.error("", str(exc)))
                    continue
                await self.service.handle(self, message)
        finally:
            # Let already-queued answers flush before closing.
            self.outgoing.put_nowait(_CLOSE)
            try:
                await writer_task
            finally:
                try:
                    self.writer.close()
                    await self.writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
