"""A small blocking client for the resident verification service.

Used by the test suite, the CI smoke script and examples; real clients
can speak the line-delimited JSON protocol from any language (see
:mod:`repro.serve.protocol`).
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Dict, List, Optional

_TERMINAL = {"done", "error", "overloaded"}


class ServiceClient:
    """One blocking connection to a running service."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._ids = itertools.count(1)

    # -- raw protocol -----------------------------------------------------------

    def send(self, message: Dict[str, object]) -> None:
        self._socket.sendall(
            (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
        )

    def receive(self) -> Dict[str, object]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line.decode("utf-8"))

    # -- conveniences -----------------------------------------------------------

    def submit(
        self,
        network: Dict[str, object],
        queries: List[str],
        **settings: object,
    ) -> str:
        """Send one query request; returns its request id (does not wait)."""
        request_id = f"r{next(self._ids)}"
        message: Dict[str, object] = {
            "op": "query",
            "id": request_id,
            "network": network,
            "queries": list(queries),
        }
        message.update(settings)
        self.send(message)
        return request_id

    def drain(self, request_id: str) -> List[Dict[str, object]]:
        """Collect every message for ``request_id`` up to and including its
        terminal message (``done``/``error``/``overloaded``)."""
        messages: List[Dict[str, object]] = []
        while True:
            message = self.receive()
            if message.get("id") != request_id:
                continue
            messages.append(message)
            if message.get("type") in _TERMINAL:
                return messages

    def query(
        self,
        network: Dict[str, object],
        queries: List[str],
        **settings: object,
    ) -> List[Dict[str, object]]:
        """Submit and wait: the full message stream of one request."""
        return self.drain(self.submit(network, queries, **settings))

    def stats(self) -> Dict[str, object]:
        request_id = f"r{next(self._ids)}"
        self.send({"op": "stats", "id": request_id})
        while True:
            message = self.receive()
            if message.get("type") == "stats" and message.get("id") == request_id:
                return message

    def metrics(self) -> Dict[str, object]:
        request_id = f"r{next(self._ids)}"
        self.send({"op": "metrics", "id": request_id})
        while True:
            message = self.receive()
            if message.get("type") == "metrics" and message.get("id") == request_id:
                return message

    def ping(self) -> None:
        request_id = f"r{next(self._ids)}"
        self.send({"op": "ping", "id": request_id})
        while True:
            message = self.receive()
            if message.get("type") == "pong" and message.get("id") == request_id:
                return

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.close()
        return None


def read_ready_line(stream) -> Dict[str, object]:
    """Parse the server's startup ``ready`` line from a text stream (the
    stdout of a ``repro.cli serve`` subprocess)."""
    for line in stream:
        line = line.strip()
        if not line:
            continue
        message = json.loads(line)
        if message.get("type") == "ready":
            return message
        raise ValueError(f"expected a ready line, got {message!r}")
    raise ValueError("server exited before printing its ready line")
