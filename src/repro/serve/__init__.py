"""The resident verification service (``python -m repro.cli serve``).

A long-lived session server over the campaign engine: hot
:class:`~repro.api.NetworkModel` s, one persistent worker pool, one
shared :class:`~repro.store.VerificationStore`.  Clients speak
line-delimited JSON (:mod:`repro.serve.protocol`); compatible concurrent
requests merge into one shared plan (cross-client injection-port dedup)
and every answer streams the moment its own jobs have reported — always
bit-identical to a standalone batch run of the same queries.
"""

from repro.serve.client import ServiceClient, read_ready_line
from repro.serve.protocol import ProtocolError
from repro.serve.scheduler import Request, VerificationService, results_digest
from repro.serve.server import run_server
from repro.serve.session import Session

__all__ = [
    "ProtocolError",
    "Request",
    "Session",
    "ServiceClient",
    "VerificationService",
    "read_ready_line",
    "results_digest",
    "run_server",
]
