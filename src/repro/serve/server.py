"""The asyncio TCP front of the resident verification service.

``run_server`` binds, prints one ``{"type": "ready", "host", "port"}``
line (``--port 0`` binds an ephemeral port, so scripts must read the real
one from this line) and serves until cancelled.  Connections are plain
line-delimited JSON — see :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Optional, TextIO

from repro.serve import protocol
from repro.serve.session import MAX_LINE_BYTES, Session


async def run_server(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_stream: Optional[TextIO] = None,
) -> None:
    """Start ``service`` and accept connections until cancelled."""
    await service.start()
    sessions = set()

    async def on_connect(reader, writer):
        task = asyncio.current_task()
        sessions.add(task)
        try:
            await Session(service, reader, writer).run()
        finally:
            sessions.discard(task)

    server = await asyncio.start_server(
        on_connect, host=host, port=port, limit=MAX_LINE_BYTES
    )
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    stream = ready_stream if ready_stream is not None else sys.stdout
    stream.write(
        protocol.encode(protocol.ready(bound_host, bound_port)).decode("utf-8")
    )
    stream.flush()
    try:
        async with server:
            await server.serve_forever()
    finally:
        # Stop accepting, then unwind the live sessions before the loop
        # goes away (their writer tasks hold queue waiters on this loop).
        server.close()
        for task in list(sessions):
            task.cancel()
        if sessions:
            await asyncio.gather(*sessions, return_exceptions=True)
        await service.stop()
