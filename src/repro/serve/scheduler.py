"""The resident verification service: hot models, one pool, one store.

:class:`VerificationService` is the long-lived object behind ``repro.cli
serve``.  It owns exactly the state a batch CLI run pays to rebuild on
every invocation:

* **resident models** — built :class:`~repro.api.NetworkModel` s keyed by
  their network spec, so the second request over a network skips the
  build.  Directory models re-check the directory's stat snapshot on every
  reuse and rebuild when the files drifted — a resident service must never
  answer for bytes it is no longer looking at.
* **one worker pool** — a persistent :class:`ProcessPoolExecutor` lent to
  every campaign (``workers > 1``), so requests stop paying process
  start-up.
* **one store** — a single :class:`~repro.store.VerificationStore` shared
  by every request: plan-cache hits, verdict warm starts and delta
  baselines accumulate across clients.

Scheduling: admitted requests land on a bounded queue.  A scheduler task
drains the queue in **groups** — it takes the first waiting request, then
keeps collecting for ``batch_window`` seconds — and partitions each group
by compatibility key (same network, same execution settings).  Every
partition is compiled into **one** :func:`~repro.api.planner.compile_plan`
call: the plan compiler dedups injection ports across the merged batch, so
two clients asking about the same port share one engine job.  Requests
that arrive while a group is executing wait on the queue and merge into
the next group.

Results stream: the merged plan runs through
:func:`~repro.api.planner.execute_plan_streaming`, and each query's answer
is forwarded to its owning client the moment its port scope has reported —
before the slowest job of the merged plan lands.  Streamed answers are
bit-identical to the batch path by construction (see the planner module).

Admission control is a bounded queue: when ``max_pending`` requests are
already waiting, new queries get an explicit ``overloaded`` response.  The
service never silently drops or degrades an admitted request.
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, MutableMapping, Optional, Tuple

from repro.api import NetworkModel, compile_plan, execute_plan_streaming, parse_query
from repro.api.model import _directory_stat_key
from repro.api.queries import Query
from repro.core.campaign import execution_counters
from repro.obs import MetricsRegistry, ensure_core_families, get_registry
from repro.serve import protocol
from repro.serve.protocol import ProtocolError

_LOG = logging.getLogger(__name__)


def results_digest(fingerprints: Iterable[str]) -> str:
    """Order-independent digest over a request's per-query result
    fingerprints — the ``fingerprint`` of a ``done`` message.  Computed
    from result fingerprints only (no plan identity), so a client can
    reproduce it from a standalone batch run of the same queries and
    compare bit-for-bit, no matter which other requests the service merged
    into the shared plan."""
    payload = tuple(sorted(fingerprints))
    return hashlib.sha256(repr(payload).encode()).hexdigest()


@dataclass
class Request:
    """One admitted ``query`` request, parsed and ready to merge."""

    request_id: str
    session: object  # anything with send_nowait(message)
    network: Dict[str, object]
    model_key: Tuple
    queries: Tuple[Query, ...]
    texts: Tuple[str, ...]
    compile_kwargs: Dict[str, object]
    delta: bool
    compat_key: Tuple = field(default=())


_SETTING_TYPES = {
    "packet": str,
    "max_hops": int,
    "max_paths": int,
    "strategy": str,
    "shared_cache": bool,
    "symmetry": bool,
}


def _parse_request(request_id: str, session, message: Dict[str, object]) -> Request:
    network = message.get("network")
    if not isinstance(network, dict):
        raise ProtocolError("query needs a 'network' object")
    if "directory" in network:
        import os

        directory = network["directory"]
        if not isinstance(directory, str):
            raise ProtocolError("'network.directory' must be a string")
        model_key: Tuple = ("directory", os.path.abspath(directory))
    elif "workload" in network:
        name = network["workload"]
        if not isinstance(name, str):
            raise ProtocolError("'network.workload' must be a string")
        options = network.get("options", {})
        if not isinstance(options, dict):
            raise ProtocolError("'network.options' must be an object")
        model_key = ("workload", name, tuple(sorted(options.items())))
    else:
        raise ProtocolError("'network' needs a 'directory' or 'workload' key")

    texts = message.get("queries")
    if not isinstance(texts, list) or not texts:
        raise ProtocolError("query needs a non-empty 'queries' list")
    queries = []
    for text in texts:
        if not isinstance(text, str):
            raise ProtocolError(f"queries must be strings, got {type(text).__name__}")
        try:
            queries.append(parse_query(text))
        except Exception as exc:
            raise ProtocolError(f"bad query {text!r}: {exc}")

    compile_kwargs: Dict[str, object] = {}
    for key, expected in _SETTING_TYPES.items():
        if key in message:
            value = message[key]
            if expected is int and isinstance(value, bool):
                raise ProtocolError(f"'{key}' must be {expected.__name__}")
            if not isinstance(value, expected):
                raise ProtocolError(f"'{key}' must be {expected.__name__}")
            compile_kwargs[key] = value
    fields = message.get("fields", {})
    if not isinstance(fields, dict):
        raise ProtocolError("'fields' must be an object")
    if fields:
        try:
            compile_kwargs["field_values"] = {
                str(name): int(value) for name, value in fields.items()
            }
        except (TypeError, ValueError):
            raise ProtocolError("'fields' values must be integers")
    delta = message.get("delta", True)
    if not isinstance(delta, bool):
        raise ProtocolError("'delta' must be a boolean")

    request = Request(
        request_id=request_id,
        session=session,
        network=dict(network),
        model_key=model_key,
        queries=tuple(queries),
        texts=tuple(str(t) for t in texts),
        compile_kwargs=compile_kwargs,
        delta=delta,
    )
    request.compat_key = (
        model_key,
        tuple(sorted(compile_kwargs.get("field_values", {}).items())),
        tuple(
            (key, compile_kwargs.get(key, default))
            for key, default in (
                ("packet", "tcp"),
                ("max_hops", 128),
                ("max_paths", 1_000_000),
                ("strategy", "dfs"),
                ("shared_cache", True),
                ("symmetry", True),
            )
        ),
        delta,
    )
    return request


_COUNTER_NAMES = (
    "requests",
    "groups",
    "merged_requests",
    "plans_executed",
    "plan_cache_hits",
    "results_streamed",
    "model_builds",
    "model_rebuilds",
    "overloaded",
    "errors",
)


class _RegistryCounters(MutableMapping):
    """The scheduler's hand-threaded counter dict, now literally backed by
    a metrics registry: ``counters["requests"] += 1`` reads and writes one
    labeled series of ``repro_serve_events_total``, so the ``stats`` verb
    and the Prometheus exposition can never disagree."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._counter = registry.counter(
            "repro_serve_events_total", "Service scheduler events by type."
        )
        self._names = list(_COUNTER_NAMES)
        for name in self._names:
            self._counter.inc(0, event=name)

    def __getitem__(self, key: str) -> int:
        if key not in self._names:
            raise KeyError(key)
        return int(self._counter.value(event=key))

    def __setitem__(self, key: str, value: int) -> None:
        if key not in self._names:
            self._names.append(key)
        self._counter.set_value(value, event=key)

    def __delitem__(self, key: str) -> None:
        raise TypeError("service counters cannot be removed")

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


class VerificationService:
    """Resident state plus the batch-window scheduler (see module docs)."""

    #: Requests slower than this end-to-end land in the slow-request log
    #: the ``metrics`` verb exposes.
    slow_request_seconds = 1.0
    #: Bounded: the log is a diagnostic window, not an archive.
    slow_request_limit = 32

    def __init__(
        self,
        *,
        workers: int = 1,
        store=None,
        max_pending: int = 8,
        batch_window: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.workers = workers
        self.store = store
        self.max_pending = max_pending
        self.batch_window = batch_window
        #: Per-service registry: scheduler counters and request-latency
        #: histograms live here (not in the process-global registry, so
        #: two services in one process never mix their stats); the
        #: ``metrics`` verb renders this registry plus the global one.
        self.registry = MetricsRegistry()
        self.counters: MutableMapping[str, int] = _RegistryCounters(
            self.registry
        )
        self.slow_requests: Deque[Dict[str, object]] = deque(
            maxlen=self.slow_request_limit
        )
        self._request_seconds = self.registry.histogram(
            "repro_serve_request_seconds",
            "End-to-end seconds per merged request group.",
        )
        self._models: Dict[Tuple, NetworkModel] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._scheduler_task = self._loop.create_task(self._scheduler())

    async def stop(self) -> None:
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _pool_for_run(self) -> Optional[ProcessPoolExecutor]:
        """The persistent pool, created on first multi-worker run.  The
        campaign probes a borrowed pool before trusting it and falls back
        to in-process execution if it is broken, so a pool that dies stays
        a performance problem, never a correctness one."""
        if self.workers <= 1:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    # -- request entry ----------------------------------------------------------

    async def handle(self, session, message: Dict[str, object]) -> None:
        """Dispatch one decoded client message (called by the session read
        loop, on the event loop)."""
        op = message.get("op")
        request_id = str(message.get("id", ""))
        if op == "ping":
            session.send_nowait(protocol.pong(request_id))
            return
        if op == "stats":
            session.send_nowait(self._stats_message(request_id))
            return
        if op == "metrics":
            session.send_nowait(
                protocol.metrics(
                    request_id,
                    self.metrics_text(),
                    list(self.slow_requests),
                )
            )
            return
        if op != "query":
            session.send_nowait(
                protocol.error(request_id, f"unknown op {op!r}")
            )
            return
        self.counters["requests"] += 1
        # Admission control: a full queue refuses loudly instead of letting
        # latency (or memory) grow without bound.
        if self._queue.qsize() >= self.max_pending:
            self.counters["overloaded"] += 1
            session.send_nowait(
                protocol.overloaded(
                    request_id, self._queue.qsize(), self.max_pending
                )
            )
            return
        try:
            request = _parse_request(request_id, session, message)
        except ProtocolError as exc:
            self.counters["errors"] += 1
            session.send_nowait(protocol.error(request_id, str(exc)))
            return
        self._queue.put_nowait(request)

    def metrics_text(self) -> str:
        """The live Prometheus exposition: this service's scheduler series
        (request counters, request-latency histogram, admission gauges)
        concatenated with the process-global registry (cache-tier hits,
        job-latency histogram, degraded operations — everything the
        campaigns running in this process published)."""
        self.registry.gauge(
            "repro_serve_pending", "Requests waiting on the admission queue."
        ).set(self._queue.qsize() if self._queue is not None else 0)
        self.registry.gauge(
            "repro_serve_models_resident", "Hot NetworkModels held in memory."
        ).set(len(self._models))
        self.registry.gauge(
            "repro_serve_workers", "Configured worker-pool size."
        ).set(self.workers)
        ensure_core_families()
        return self.registry.render_prometheus() + get_registry().render_prometheus()

    def _stats_message(self, request_id: str) -> Dict[str, object]:
        message: Dict[str, object] = {"type": "stats", "id": request_id}
        message["service"] = dict(self.counters)
        message["service"]["models_resident"] = len(self._models)
        message["service"]["pending"] = (
            self._queue.qsize() if self._queue is not None else 0
        )
        message["service"]["workers"] = self.workers
        # Engine-run counters of *this* process: with workers=1 every merged
        # job executes here, so cross-client dedup is directly observable
        # (pool workers count their runs in their own processes).
        message["execution"] = execution_counters()
        return message

    # -- the scheduler ----------------------------------------------------------

    async def _scheduler(self) -> None:
        while True:
            group = [await self._queue.get()]
            deadline = self._loop.time() + self.batch_window
            while True:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    group.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            buckets: Dict[Tuple, List[Request]] = {}
            for request in group:
                buckets.setdefault(request.compat_key, []).append(request)
            for bucket in buckets.values():
                await self._run_group(bucket)

    def _resident_model(self, request: Request) -> NetworkModel:
        """The hot model for a request's network spec, rebuilt when a
        directory spec's files no longer stat the way they did at build
        time (a resident model must answer for the bytes on disk *now*)."""
        key = request.model_key
        model = self._models.get(key)
        if (
            model is not None
            and key[0] == "directory"
            and (
                model._build_stat_key is None
                or model._build_stat_key != _directory_stat_key(key[1])
            )
        ):
            self.counters["model_rebuilds"] += 1
            model = None
        if model is None:
            if key[0] == "directory":
                model = NetworkModel.from_directory(key[1])
            else:
                name = request.network["workload"]
                options = request.network.get("options", {})
                model = NetworkModel.from_workload(name, **options)
            model.network()  # build now: residency means paying this once
            self.counters["model_builds"] += 1
            self._models[key] = model
        return model

    async def _run_group(self, requests: List[Request]) -> None:
        """Merge one compatible request group into a single plan, execute
        it streaming, and route each answer to its owning session."""
        self.counters["groups"] += 1
        self.counters["merged_requests"] += len(requests)
        loop = self._loop

        def post(session, message: Dict[str, object]) -> None:
            # Called from the executor thread: hop to the event loop.
            loop.call_soon_threadsafe(session.send_nowait, message)

        def work():
            model = self._resident_model(requests[0])
            # Merge: one plan entry per distinct query text across the
            # group; routes maps each merged index back to every
            # (request, local index) that asked it.
            merged: List[Query] = []
            index_of: Dict[str, int] = {}
            routes: Dict[int, List[Tuple[Request, int]]] = {}
            for request in requests:
                for local, (query, text) in enumerate(
                    zip(request.queries, request.texts)
                ):
                    if text not in index_of:
                        index_of[text] = len(merged)
                        merged.append(query)
                    routes.setdefault(index_of[text], []).append(
                        (request, local)
                    )
            plan = compile_plan(
                model, merged, **requests[0].compile_kwargs
            )
            for request in requests:
                post(
                    request.session,
                    protocol.accepted(
                        request.request_id,
                        plan.job_count,
                        len(request.queries),
                        len(requests),
                    ),
                )
            # Keyed by request identity, not request id: ids are chosen by
            # clients and two merged sessions may well have picked the
            # same one.
            streamed_fingerprints: Dict[int, List[str]] = {
                id(request): [] for request in requests
            }

            def on_result(index, query_result, jobs_reported, jobs_total):
                payload = query_result.to_dict()
                for request, local in routes.get(index, ()):
                    self.counters["results_streamed"] += 1
                    streamed_fingerprints[id(request)].append(
                        query_result.fingerprint
                    )
                    post(
                        request.session,
                        protocol.result(
                            request.request_id,
                            local,
                            payload,
                            jobs_reported,
                            jobs_total,
                        ),
                    )

            plan_result = execute_plan_streaming(
                plan,
                workers=self.workers,
                store=self.store,
                pool=self._pool_for_run(),
                delta=requests[0].delta,
                on_result=on_result,
            )
            return plan_result, streamed_fingerprints

        group_started = time.perf_counter()
        try:
            plan_result, fingerprints = await loop.run_in_executor(None, work)
        except Exception as exc:  # any failure answers every merged client
            self.counters["errors"] += 1
            _LOG.warning(
                "request group of %d failed, answering every merged "
                "client with an error: %s", len(requests), exc,
            )
            for request in requests:
                request.session.send_nowait(
                    protocol.error(request.request_id, str(exc))
                )
            return
        elapsed = time.perf_counter() - group_started
        self._request_seconds.observe(elapsed)
        if elapsed >= self.slow_request_seconds:
            self.slow_requests.append(
                {
                    "seconds": round(elapsed, 6),
                    "requests": len(requests),
                    "queries": sorted(
                        {text for r in requests for text in r.texts}
                    ),
                    "jobs": plan_result.plan.job_count,
                    "from_cache": plan_result.from_cache,
                }
            )
            _LOG.warning(
                "slow request group: %.3fs for %d merged request(s)",
                elapsed, len(requests),
            )
        self.counters["plans_executed"] += 1
        if plan_result.from_cache:
            self.counters["plan_cache_hits"] += 1
        stats = plan_result.stats
        stats_payload = stats.to_dict() if stats is not None else {}
        for request in requests:
            request.session.send_nowait(
                protocol.done(
                    request.request_id,
                    results_digest(fingerprints[id(request)]),
                    plan_result.from_cache,
                    stats_payload,
                )
            )
