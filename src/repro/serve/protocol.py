"""Wire protocol of the resident verification service.

One JSON object per line (UTF-8, ``\\n``-terminated), both directions — the
lowest-tech framing that every language and a shell pipe can speak.

Requests (client → server)::

    {"op": "query", "id": "r1",
     "network": {"directory": "/path"} |
                {"workload": "stanford", "options": {"zones": 4}},
     "queries": ["loop()", "forall_pairs(reach)"],
     ... optional settings: packet, fields, max_hops, max_paths, strategy,
         shared_cache, symmetry, delta ...}
    {"op": "ping", "id": "r2"}
    {"op": "stats", "id": "r3"}
    {"op": "metrics", "id": "r4"}

Responses (server → client), all tagged with the request ``id``:

* ``{"type": "accepted", "id", "jobs", "queries", "merged_requests"}`` —
  the request was admitted and compiled (possibly merged with other
  in-flight requests into one shared plan; ``jobs`` is the merged plan's
  engine-job count).
* ``{"type": "result", "id", "index", "query", "holds", "value",
  "evidence", "fingerprint", "jobs_reported", "jobs_total"}`` — one
  query's answer, **streamed the moment its injection ports have all
  reported**.  ``jobs_reported < jobs_total`` is positive proof the answer
  arrived before the plan's barrier.
* ``{"type": "done", "id", "fingerprint", "from_cache", "stats"}`` — every
  query of the request has been answered.
* ``{"type": "overloaded", "id", "pending", "max_pending"}`` — admission
  control refused the request (bounded queue full).  The service never
  degrades answers under load — it refuses loudly instead.
* ``{"type": "error", "id", "error"}`` — the request failed (parse error,
  unknown workload, execution failure).  Partial results already streamed
  for the request remain valid.
* ``{"type": "pong", "id"}`` / ``{"type": "stats", "id", ...}``.
* ``{"type": "metrics", "id", "prometheus", "slow_requests"}`` — the
  service's metrics registry rendered in Prometheus text exposition
  format, plus the most recent slow-request log entries (wall seconds,
  merged request count, query texts).

The server also prints one ``{"type": "ready", "host", "port"}`` line on
stdout once its socket is bound (``--port 0`` binds an ephemeral port, so
scripts must read it from here).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class ProtocolError(ValueError):
    """A line that is not a JSON object, or an unusable request."""


def encode(message: Dict[str, object]) -> bytes:
    """One response/request as a wire line (compact JSON + newline)."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one wire line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
    return message


# -- response constructors (the one place response shapes are defined) -------


def ready(host: str, port: int) -> Dict[str, object]:
    return {"type": "ready", "host": host, "port": port}


def accepted(
    request_id: str, jobs: int, queries: int, merged_requests: int
) -> Dict[str, object]:
    return {
        "type": "accepted",
        "id": request_id,
        "jobs": jobs,
        "queries": queries,
        "merged_requests": merged_requests,
    }


def result(
    request_id: str,
    index: int,
    payload: Dict[str, object],
    jobs_reported: int,
    jobs_total: int,
) -> Dict[str, object]:
    message: Dict[str, object] = {
        "type": "result",
        "id": request_id,
        "index": index,
        "jobs_reported": jobs_reported,
        "jobs_total": jobs_total,
    }
    message.update(payload)
    return message


def done(
    request_id: str,
    fingerprint: str,
    from_cache: bool,
    stats: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    return {
        "type": "done",
        "id": request_id,
        "fingerprint": fingerprint,
        "from_cache": from_cache,
        "stats": stats or {},
    }


def overloaded(
    request_id: str, pending: int, max_pending: int
) -> Dict[str, object]:
    return {
        "type": "overloaded",
        "id": request_id,
        "pending": pending,
        "max_pending": max_pending,
    }


def error(request_id: str, message: str) -> Dict[str, object]:
    return {"type": "error", "id": request_id, "error": message}


def pong(request_id: str) -> Dict[str, object]:
    return {"type": "pong", "id": request_id}


def metrics(
    request_id: str,
    prometheus: str,
    slow_requests: List[Dict[str, object]],
) -> Dict[str, object]:
    return {
        "type": "metrics",
        "id": request_id,
        "prometheus": prometheus,
        "slow_requests": slow_requests,
    }
