"""Firewall models: ACL (stateless) and stateful.

The stateless firewall applies an ordered list of allow/deny rules over the
IP five-tuple without branching: the allow rules on a path are expressed as
constraints and denied packets simply fail.  The stateful firewall uses the
NAT technique from §7 — per-flow state is stored in local packet metadata, so
return traffic is admitted exactly when the forward direction was seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.network.element import NetworkElement
from repro.sefl.expressions import And, Condition, Eq, Ne, OneOf
from repro.sefl.fields import IpDst, IpProto, IpSrc, TcpDst, TcpSrc, PROTO_TCP
from repro.sefl.instructions import (
    Allocate,
    Assign,
    Constrain,
    Fail,
    Forward,
    If,
    Instruction,
    InstructionBlock,
    LOCAL,
    NoOp,
)
from repro.solver.intervals import IntervalSet, prefix_to_interval
from repro.sefl.util import parse_prefix


@dataclass(frozen=True)
class AclRule:
    """One access-control rule over the IPv4 / TCP five-tuple.

    ``None`` fields are wildcards.  ``src`` and ``dst`` are prefix strings
    (``"10.0.0.0/8"``); ports are integers or ``(low, high)`` ranges.
    """

    action: str  # "allow" or "deny"
    src: Optional[str] = None
    dst: Optional[str] = None
    proto: Optional[int] = None
    src_port: Optional[object] = None
    dst_port: Optional[object] = None

    def condition(self) -> Condition:
        """The match condition of this rule as a SEFL condition."""
        clauses: List[Condition] = []
        if self.src is not None:
            address, plen = parse_prefix(self.src)
            interval = prefix_to_interval(address, plen)
            clauses.append(OneOf(IpSrc, IntervalSet([(interval.lo, interval.hi)])))
        if self.dst is not None:
            address, plen = parse_prefix(self.dst)
            interval = prefix_to_interval(address, plen)
            clauses.append(OneOf(IpDst, IntervalSet([(interval.lo, interval.hi)])))
        if self.proto is not None:
            clauses.append(Eq(IpProto, self.proto))
        if self.src_port is not None:
            clauses.append(_port_condition(TcpSrc, self.src_port))
        if self.dst_port is not None:
            clauses.append(_port_condition(TcpDst, self.dst_port))
        if not clauses:
            clauses.append(Eq(0, 0))  # match-all
        return And(*clauses) if len(clauses) > 1 else clauses[0]


def _port_condition(field, spec) -> Condition:
    if isinstance(spec, tuple):
        low, high = spec
        return OneOf(field, IntervalSet([(low, high)]))
    return Eq(field, int(spec))


def build_acl_firewall(
    name: str,
    rules: Sequence[AclRule],
    default_action: str = "deny",
) -> NetworkElement:
    """A stateless packet filter applying ``rules`` in order.

    The generated model has at most one path per verdict: an ``If`` cascade
    walks the rules in priority order; an "allow" forwards, a "deny" fails.
    """
    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="firewall"
    )
    program: Instruction
    if default_action == "allow":
        program = Forward("out0")
    else:
        program = Fail("denied by default policy")
    for rule in reversed(list(rules)):
        verdict: Instruction = (
            Forward("out0") if rule.action == "allow" else Fail("denied by ACL rule")
        )
        program = If(rule.condition(), verdict, program)
    element.set_input_program("in0", program)
    return element


def build_stateful_firewall(name: str) -> NetworkElement:
    """A stateful firewall: only return traffic matching a previously seen
    outgoing flow is admitted.

    Outgoing traffic (inside → outside) enters ``in0`` and leaves ``out0``;
    return traffic enters ``in1`` and leaves ``out1``.  The flow state is the
    five-tuple saved into local metadata on the outgoing direction and
    checked on the return direction — no branching is required (§7).
    """
    element = NetworkElement(
        name,
        input_ports=["in0", "in1"],
        output_ports=["out0", "out1"],
        kind="stateful-firewall",
    )

    outgoing = InstructionBlock(
        Constrain(Eq(IpProto, PROTO_TCP)),
        Allocate("fw-src-ip", 32, LOCAL),
        Allocate("fw-dst-ip", 32, LOCAL),
        Allocate("fw-src-port", 16, LOCAL),
        Allocate("fw-dst-port", 16, LOCAL),
        Assign("fw-src-ip", IpSrc),
        Assign("fw-dst-ip", IpDst),
        Assign("fw-src-port", TcpSrc),
        Assign("fw-dst-port", TcpDst),
        Forward("out0"),
    )

    # Return traffic must be the mirror of a recorded flow.
    incoming = InstructionBlock(
        Constrain(Eq(IpProto, PROTO_TCP)),
        Constrain(Eq(IpSrc, "fw-dst-ip")),
        Constrain(Eq(IpDst, "fw-src-ip")),
        Constrain(Eq(TcpSrc, "fw-dst-port")),
        Constrain(Eq(TcpDst, "fw-src-port")),
        Forward("out1"),
    )

    element.set_input_program("in0", outgoing)
    element.set_input_program("in1", incoming)
    return element
