"""IP router models (§7, "Modeling an IP Router").

The difficulty is longest-prefix match: naively emitting one branch per
prefix makes symbolic execution intractable for core routers with hundreds
of thousands of prefixes.  The paper's encoding subtracts every more-specific
overlapping prefix from each rule ("``!a & b``") so that the per-port
constraints become mutually exclusive, then groups rules per output
interface, bringing the number of paths down to the number of links.

``group_prefixes_by_port`` computes exactly that: the set of destination
addresses each output port attracts under longest-prefix-match semantics,
represented as an interval set (a prefix is a contiguous address range).
Three model styles mirror Table 2:

* **basic** — one ``If`` per prefix (most specific first);
* **ingress** — one ``If`` per output port with the mutually-exclusive sets;
* **egress** — fork to all ports, constrain on egress (the recommended model).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.network.element import NetworkElement, WILDCARD_PORT
from repro.sefl.expressions import OneOf
from repro.sefl.fields import IpDst
from repro.sefl.instructions import (
    Constrain,
    Fail,
    Fork,
    Forward,
    If,
    Instruction,
)
from repro.solver.intervals import IntervalSet, prefix_to_interval

# A forwarding table entry: (prefix address, prefix length, output port name).
FibEntry = Tuple[int, int, str]


class RouterModelStyle(str, Enum):
    BASIC = "basic"
    INGRESS = "ingress"
    EGRESS = "egress"


def group_prefixes_by_port(
    fib: Sequence[FibEntry], width: int = 32
) -> Dict[str, IntervalSet]:
    """Compute, per output port, the destination addresses it attracts under
    longest-prefix-match semantics.

    Implemented as a sweep over prefix boundaries: prefixes of equal length
    never partially overlap, so at any address the winning rule is the active
    prefix with the greatest length.  The result is a set of mutually
    exclusive interval sets — the paper's "``!a & b``" constraints in closed
    form.
    """
    if not fib:
        return {}
    events: List[Tuple[int, int, int, str]] = []  # (position, kind, plen, port)
    for address, plen, port in fib:
        interval = prefix_to_interval(address, plen, width)
        events.append((interval.lo, 0, plen, port))  # 0 = start (processed first)
        events.append((interval.hi + 1, 1, plen, port))  # 1 = end
    events.sort(key=lambda e: (e[0], e[1]))

    active: List[Dict[str, str]] = [dict() for _ in range(width + 1)]
    segments: Dict[str, List[Tuple[int, int]]] = {}

    def winning_port() -> str | None:
        for plen in range(width, -1, -1):
            if active[plen]:
                # All active prefixes of one length agree at the current
                # position (equal-length prefixes are disjoint), so any entry
                # will do.
                return next(iter(active[plen].values()))
        return None

    position = events[0][0]
    index = 0
    top = (1 << width) - 1
    while index < len(events):
        next_position = events[index][0]
        if next_position > position:
            port = winning_port()
            if port is not None:
                segments.setdefault(port, []).append((position, next_position - 1))
            position = next_position
        # apply all events at this position (ends before starts keeps the
        # bookkeeping exact because ends are at hi + 1)
        while index < len(events) and events[index][0] == next_position:
            _, kind, plen, port = events[index]
            key = f"{plen}:{port}:{index}"
            if kind == 1:
                # remove one active prefix of this length/port
                bucket = active[plen]
                for existing_key in list(bucket):
                    if bucket[existing_key] == port:
                        del bucket[existing_key]
                        break
            else:
                active[plen][key] = port
            index += 1
    # trailing segment up to the end of the address space
    port = winning_port()
    if port is not None and position <= top:
        segments.setdefault(port, []).append((position, top))

    return {port: IntervalSet(pairs) for port, pairs in segments.items()}


def _port_order(fib: Sequence[FibEntry]) -> List[str]:
    seen: List[str] = []
    for _, _, port in fib:
        if port not in seen:
            seen.append(port)
    return seen


def router_basic(
    name: str, fib: Sequence[FibEntry], input_ports: Sequence[str] = ("in0",)
) -> NetworkElement:
    """One ``If`` per prefix, most specific first (the intractable strawman)."""
    ports = _port_order(fib)
    element = NetworkElement(
        name, input_ports=list(input_ports), output_ports=ports, kind="router"
    )
    program: Instruction = Fail("no route to destination")
    ordered = sorted(fib, key=lambda entry: entry[1])  # least specific first
    for address, plen, port in ordered:
        interval = prefix_to_interval(address, plen)
        condition = OneOf(IpDst, IntervalSet([(interval.lo, interval.hi)]))
        program = If(condition, Forward(port), program)
    element.set_input_program(WILDCARD_PORT, program)
    return element


def router_ingress(
    name: str, fib: Sequence[FibEntry], input_ports: Sequence[str] = ("in0",)
) -> NetworkElement:
    """Group prefixes per port with mutually-exclusive constraints, decide on
    ingress."""
    groups = group_prefixes_by_port(fib)
    ports = _port_order(fib)
    element = NetworkElement(
        name, input_ports=list(input_ports), output_ports=ports, kind="router"
    )
    program: Instruction = Fail("no route to destination")
    for port in reversed(ports):
        allowed = groups.get(port)
        if allowed is None or allowed.is_empty():
            continue
        program = If(OneOf(IpDst, allowed), Forward(port), program)
    element.set_input_program(WILDCARD_PORT, program)
    return element


def router_egress(
    name: str, fib: Sequence[FibEntry], input_ports: Sequence[str] = ("in0",)
) -> NetworkElement:
    """Fork to every port and constrain on egress (optimal branching)."""
    groups = group_prefixes_by_port(fib)
    ports = _port_order(fib)
    element = NetworkElement(
        name, input_ports=list(input_ports), output_ports=ports, kind="router"
    )
    element.set_input_program(WILDCARD_PORT, Fork(*ports))
    for port in ports:
        allowed = groups.get(port)
        if allowed is None or allowed.is_empty():
            element.set_output_program(port, Fail("no prefixes on this interface"))
        else:
            element.set_output_program(port, Constrain(OneOf(IpDst, allowed)))
    return element


def build_router(
    name: str,
    fib: Sequence[FibEntry],
    style: RouterModelStyle = RouterModelStyle.EGRESS,
    input_ports: Sequence[str] = ("in0",),
) -> NetworkElement:
    """Build an IP router model with the requested encoding."""
    style = RouterModelStyle(style)
    if style is RouterModelStyle.BASIC:
        return router_basic(name, fib, input_ports)
    if style is RouterModelStyle.INGRESS:
        return router_ingress(name, fib, input_ports)
    return router_egress(name, fib, input_ports)


def longest_prefix_match(fib: Sequence[FibEntry], destination: int) -> str | None:
    """Reference longest-prefix-match lookup (used by tests to validate the
    symbolic models against ground truth)."""
    best: Tuple[int, str] | None = None
    for address, plen, port in fib:
        interval = prefix_to_interval(address, plen)
        if interval.lo <= destination <= interval.hi:
            if best is None or plen > best[0]:
                best = (plen, port)
    return best[1] if best else None
