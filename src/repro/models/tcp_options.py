"""TCP options processing, modeled the SEFL way (§7 and Figure 7).

Instead of parsing the options byte array (which forces a branch per byte,
the behaviour measured in Table 1), the model "pre-parses" the options into
packet metadata: option kind ``x`` is described by three map entries —
``OPTx`` (present: 1 / absent: 0), ``SIZEx`` (length) and ``VALx`` (body).

The default policy reproduces the CISCO ASA behaviour the paper reverse
engineered:

* MSS (kind 2) is always present on the output and its value is clamped to
  at most 1380;
* the SACK-permitted option (kind 4) is stripped for HTTP traffic
  (destination port 80);
* multipath TCP (kind 30) is always stripped;
* MSS, window scale, SACK-permitted, SACK and timestamps are allowed;
* every other option is stripped (replaced by padding in the real code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.network.element import NetworkElement
from repro.sefl.expressions import ConstantValue, Eq, Gt, SymbolicValue
from repro.sefl.fields import TcpDst
from repro.sefl.instructions import (
    Allocate,
    Assign,
    Constrain,
    Fail,
    For,
    Forward,
    If,
    Instruction,
    InstructionBlock,
    NoOp,
)

# Well-known TCP option kinds.
OPTION_EOL = 0
OPTION_NOP = 1
OPTION_MSS = 2
OPTION_WSCALE = 3
OPTION_SACK_OK = 4
OPTION_SACK = 5
OPTION_TIMESTAMP = 8
OPTION_MPTCP = 30

ALLOW = "allow"
STRIP = "strip"
DROP = "drop"


@dataclass(frozen=True)
class OptionPolicy:
    """Per-option verdicts plus the ASA's special-case behaviours."""

    verdicts: Mapping[int, str]
    default: str = STRIP
    mss_clamp: Optional[int] = 1380
    always_add_mss: bool = True
    strip_sackok_for_http: bool = True

    def verdict(self, kind: int) -> str:
        return self.verdicts.get(kind, self.default)


ASA_DEFAULT_OPTION_POLICY = OptionPolicy(
    verdicts={
        OPTION_MSS: ALLOW,
        OPTION_WSCALE: ALLOW,
        OPTION_SACK_OK: ALLOW,
        OPTION_SACK: ALLOW,
        OPTION_TIMESTAMP: ALLOW,
        OPTION_MPTCP: STRIP,
    },
)


def option_var(kind: int) -> str:
    return f"OPT{kind}"


def size_var(kind: int) -> str:
    return f"SIZE{kind}"


def value_var(kind: int) -> str:
    return f"VAL{kind}"


OptionSpec = Union[int, SymbolicValue, ConstantValue, None]


def tcp_options_metadata(
    options: Mapping[int, OptionSpec] | Sequence[int],
    symbolic_presence: bool = False,
) -> InstructionBlock:
    """Packet-builder block creating the options metadata.

    ``options`` is either a sequence of option kinds (each present with a
    symbolic value) or a mapping from kind to presence (``1`` / ``0`` /
    ``SymbolicValue`` for "unknown").  Size and body metadata are created for
    every listed kind.  With ``symbolic_presence`` the presence flags are
    symbolic even when a plain sequence is passed, which is how the
    evaluation injects "a packet carrying any combination of options".
    """
    if not isinstance(options, Mapping):
        options = {
            kind: (SymbolicValue(f"opt{kind}", 8) if symbolic_presence else 1)
            for kind in options
        }
    instructions = []
    for kind, presence in options.items():
        presence_expr: Union[int, SymbolicValue, ConstantValue]
        if presence is None:
            presence_expr = SymbolicValue(f"opt{kind}", 8)
        else:
            presence_expr = presence
        instructions.extend(
            [
                Allocate(option_var(kind), 8),
                Assign(option_var(kind), presence_expr),
                Allocate(size_var(kind), 8),
                Assign(size_var(kind), SymbolicValue(f"optsize{kind}", 8)),
                Allocate(value_var(kind), 32),
                Assign(value_var(kind), SymbolicValue(f"optval{kind}", 32)),
            ]
        )
    return InstructionBlock(*instructions)


def options_filter_program(
    policy: OptionPolicy = ASA_DEFAULT_OPTION_POLICY,
) -> InstructionBlock:
    """The SEFL model of the ASA options parsing code (Figure 7).

    The program never branches per option byte: stripping is an assignment,
    dropping is a ``Fail`` guarded by a single ``If`` on the presence flag,
    and unknown options are handled by a ``For`` loop over the ``OPTx``
    metadata keys, unfolded at execution time.
    """
    instructions: list[Instruction] = []

    # Options the policy rejects outright: the packet is dropped when the
    # option is present.  The For guard makes the check a no-op for packets
    # that do not carry the option's metadata at all.
    for kind, verdict in sorted(policy.verdicts.items()):
        if verdict == DROP:
            instructions.append(
                For(
                    rf"OPT{kind}",
                    lambda key, _kind=kind: If(
                        Eq(key, 1), Fail(f"TCP option {_kind} rejected"), NoOp()
                    ),
                )
            )

    # SACK-permitted is stripped for HTTP traffic only.
    if policy.strip_sackok_for_http:
        instructions.append(
            For(
                rf"OPT{OPTION_SACK_OK}",
                lambda key: If(Eq(TcpDst, 80), Assign(key, 0), NoOp()),
            )
        )

    # Every option the policy does not explicitly allow is stripped — a plain
    # assignment, no branching.  The For loop iterates a snapshot of the
    # metadata keys, so the model does not need to know in advance which
    # options the packet carries.
    def strip_unknown(key: str) -> Instruction:
        kind = int(key[len("OPT"):])
        if policy.verdict(kind) == ALLOW:
            return NoOp()
        return Assign(key, 0)

    instructions.append(For(r"OPT\d+", strip_unknown))

    # The ASA always inserts an MSS option (masking any existing allocation)
    # and clamps its value when the packet advertised one.
    if policy.always_add_mss:
        instructions.extend(
            [
                Allocate(option_var(OPTION_MSS), 8),
                Assign(option_var(OPTION_MSS), 1),
                Allocate(size_var(OPTION_MSS), 8),
                Assign(size_var(OPTION_MSS), 4),
            ]
        )
    if policy.mss_clamp is not None:
        instructions.append(
            For(
                rf"VAL{OPTION_MSS}",
                lambda key: If(
                    Gt(key, policy.mss_clamp),
                    Assign(key, policy.mss_clamp),
                    NoOp(),
                ),
            )
        )
    return InstructionBlock(*instructions)


def build_tcp_options_filter(
    name: str,
    policy: OptionPolicy = ASA_DEFAULT_OPTION_POLICY,
) -> NetworkElement:
    """A network element applying the options policy and forwarding."""
    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="tcp-options"
    )
    element.set_input_program(
        "in0",
        InstructionBlock(options_filter_program(policy), Forward("out0")),
    )
    return element
