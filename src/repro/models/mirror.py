"""IP mirror: swap source/destination addresses and transport ports.

This is the Click ``IPMirror`` element the paper uses to model return
traffic in unidirectional test setups (§8.3 / §8.4): bolted after a box, it
bounces a packet back as if the destination had replied.
"""

from __future__ import annotations

from repro.network.element import NetworkElement
from repro.sefl.fields import IpDst, IpSrc, TcpDst, TcpSrc
from repro.sefl.instructions import (
    Allocate,
    Assign,
    Deallocate,
    Forward,
    InstructionBlock,
)


def mirror_program(swap_ports: bool = True) -> InstructionBlock:
    """The instruction block performing the swap (reused by the Click model)."""
    instructions = [
        Allocate("mirror-tmp", 32),
        Assign("mirror-tmp", IpSrc),
        Assign(IpSrc, IpDst),
        Assign(IpDst, "mirror-tmp"),
        Deallocate("mirror-tmp"),
    ]
    if swap_ports:
        instructions.extend(
            [
                Allocate("mirror-tmp-port", 16),
                Assign("mirror-tmp-port", TcpSrc),
                Assign(TcpSrc, TcpDst),
                Assign(TcpDst, "mirror-tmp-port"),
                Deallocate("mirror-tmp-port"),
            ]
        )
    instructions.append(Forward("out0"))
    return InstructionBlock(*instructions)


def build_ip_mirror(name: str, swap_ports: bool = True) -> NetworkElement:
    """Build an IPMirror element (``in0`` → ``out0``)."""
    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="ip-mirror"
    )
    element.set_input_program("in0", mirror_program(swap_ports))
    return element
