"""Packet-construction programs (host / traffic source models).

SymNet "starts execution by creating an initial empty packet, with no header
fields or metadata, and then executes code to create a symbolic packet of the
given type (e.g. TCP)" (§5).  The helpers below build those programs: they
set the Start/End tags, create the layer tags and allocate each header field,
assigning either a fresh symbolic value or a caller-supplied concrete value.

Packet layout follows Figure 6: the Start tag is at bit 0, L2 at Start, L3 at
L2 + 112, L4 at L3 + 160 and the payload after the transport header.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.sefl.expressions import ConstantValue, SymbolicValue
from repro.sefl.fields import (
    ETHER_HEADER_BITS,
    ETHERTYPE_IP,
    IP_HEADER_BITS,
    TCP_HEADER_BITS,
    HeaderField,
    Tag,
    ethernet_fields,
    icmp_fields,
    ipv4_fields,
    tcp_fields,
    udp_fields,
    IpProto,
    IpVersion,
    EtherType,
    TcpPayload,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.sefl.instructions import (
    Allocate,
    Assign,
    CreateTag,
    Instruction,
    InstructionBlock,
)

FieldValues = Dict[HeaderField, Union[int, SymbolicValue, ConstantValue]]


def _allocate_and_assign(
    field: HeaderField, values: Optional[FieldValues]
) -> InstructionBlock:
    provided = (values or {}).get(field)
    if provided is None:
        expression: Union[int, SymbolicValue, ConstantValue] = SymbolicValue(
            field.name or "field", field.width
        )
    elif isinstance(provided, int):
        expression = ConstantValue(provided)
    else:
        expression = provided
    return InstructionBlock(
        Allocate(field, field.width),
        Assign(field, expression),
    )


def ethernet_header(values: Optional[FieldValues] = None) -> InstructionBlock:
    """Create the L2 tag (at Start) and allocate the Ethernet fields."""
    return InstructionBlock(
        CreateTag("L2", Tag("Start")),
        *[_allocate_and_assign(field, values) for field in ethernet_fields()],
    )


def ip_header(values: Optional[FieldValues] = None) -> InstructionBlock:
    """Create the L3 tag (after Ethernet) and allocate the IPv4 fields."""
    return InstructionBlock(
        CreateTag("L3", Tag("L2") + ETHER_HEADER_BITS),
        *[_allocate_and_assign(field, values) for field in ipv4_fields()],
    )


def tcp_header(values: Optional[FieldValues] = None) -> InstructionBlock:
    """Create the L4 and Payload tags and allocate the TCP fields."""
    return InstructionBlock(
        CreateTag("L4", Tag("L3") + IP_HEADER_BITS),
        *[_allocate_and_assign(field, values) for field in tcp_fields()],
        CreateTag("Payload", Tag("L4") + TCP_HEADER_BITS),
        _allocate_and_assign(TcpPayload, values),
    )


def udp_header(values: Optional[FieldValues] = None) -> InstructionBlock:
    """Create the L4 tag and allocate the UDP fields."""
    return InstructionBlock(
        CreateTag("L4", Tag("L3") + IP_HEADER_BITS),
        *[_allocate_and_assign(field, values) for field in udp_fields()],
    )


def icmp_header(values: Optional[FieldValues] = None) -> InstructionBlock:
    """Create the L4 tag and allocate the ICMP fields."""
    return InstructionBlock(
        CreateTag("L4", Tag("L3") + IP_HEADER_BITS),
        *[_allocate_and_assign(field, values) for field in icmp_fields()],
    )


def _base_tags() -> InstructionBlock:
    return InstructionBlock(
        CreateTag("Start", 0),
        CreateTag("End", 0),
    )


def symbolic_ip_packet(values: Optional[FieldValues] = None) -> InstructionBlock:
    """A symbolic Ethernet + IPv4 packet (no transport header)."""
    merged: FieldValues = {IpVersion: 4, EtherType: ETHERTYPE_IP}
    merged.update(values or {})
    return InstructionBlock(
        _base_tags(),
        ethernet_header(merged),
        ip_header(merged),
    )


def symbolic_tcp_packet(values: Optional[FieldValues] = None) -> InstructionBlock:
    """A symbolic Ethernet + IPv4 + TCP packet.

    Every field not pinned in ``values`` gets a fresh symbolic value; the IP
    protocol defaults to TCP (6) and the EtherType to IPv4 so that layer
    models agree with the packet layout.
    """
    merged: FieldValues = {IpVersion: 4, EtherType: ETHERTYPE_IP, IpProto: PROTO_TCP}
    merged.update(values or {})
    return InstructionBlock(
        _base_tags(),
        ethernet_header(merged),
        ip_header(merged),
        tcp_header(merged),
    )


def symbolic_udp_packet(values: Optional[FieldValues] = None) -> InstructionBlock:
    """A symbolic Ethernet + IPv4 + UDP packet."""
    merged: FieldValues = {IpVersion: 4, EtherType: ETHERTYPE_IP, IpProto: PROTO_UDP}
    merged.update(values or {})
    return InstructionBlock(
        _base_tags(),
        ethernet_header(merged),
        ip_header(merged),
        udp_header(merged),
    )


def symbolic_icmp_packet(values: Optional[FieldValues] = None) -> InstructionBlock:
    """A symbolic Ethernet + IPv4 + ICMP packet."""
    merged: FieldValues = {IpVersion: 4, EtherType: ETHERTYPE_IP, IpProto: PROTO_ICMP}
    merged.update(values or {})
    return InstructionBlock(
        _base_tags(),
        ethernet_header(merged),
        ip_header(merged),
        icmp_header(merged),
    )
