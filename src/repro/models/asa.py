"""Composite CISCO ASA model (§7.2).

The ASA is modeled, as in the paper, as a pipeline of simpler elements
rather than a single monolithic program: ingress static NAT, stateful TCP
inspection, filtering, dynamic NAT and the TCP-options element.  The builder
adds all stages to the caller's :class:`Network` and returns the attachment
points so that the department / enterprise topologies can wire the ASA
between their inside and outside segments.

Outbound pipeline (inside → outside)::

    inside ─→ outbound ACL ─→ stateful firewall ─→ dynamic NAT ─→ options ─→ outside

Inbound pipeline (outside → inside)::

    outside ─→ static dst-NAT ─┬→ dynamic NAT (return) ─→ stateful check ─┐
                               └→ inbound ACL (new connections) ──────────┴→ options ─→ inside
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.models.firewall import AclRule, build_acl_firewall, build_stateful_firewall
from repro.models.nat import build_nat
from repro.models.tcp_options import (
    ASA_DEFAULT_OPTION_POLICY,
    OptionPolicy,
    build_tcp_options_filter,
)
from repro.network.element import NetworkElement
from repro.network.topology import Network
from repro.sefl.expressions import Eq
from repro.sefl.fields import IpDst
from repro.sefl.instructions import (
    Assign,
    Fork,
    Forward,
    If,
    Instruction,
    InstructionBlock,
    NoOp,
)
from repro.sefl.util import ip_to_number


@dataclass
class AsaConfig:
    """Configuration of the ASA model (mirrors the parsed appliance config)."""

    public_address: str = "141.85.37.1"
    nat_port_range: Tuple[int, int] = (1024, 65535)
    # Static NAT rules: (public address, private address).
    static_nat: List[Tuple[str, str]] = field(default_factory=list)
    # Inbound ACL: default deny unless a rule allows the packet.
    inbound_rules: List[AclRule] = field(default_factory=list)
    # Outbound ACL: default allow.
    outbound_rules: List[AclRule] = field(default_factory=list)
    options_policy: OptionPolicy = ASA_DEFAULT_OPTION_POLICY
    enable_dynamic_nat: bool = True


@dataclass
class AsaAttachment:
    """Where to connect the surrounding topology to the ASA pipeline."""

    inside_entry: Tuple[str, str]  # traffic from the inside LAN enters here
    outside_exit: Tuple[str, str]  # ... and leaves the ASA here
    outside_entry: Tuple[str, str]  # traffic from the Internet enters here
    inside_exit: Tuple[str, str]  # ... and leaves towards the inside here
    elements: List[str] = field(default_factory=list)


def _static_dst_nat(name: str, rules: Sequence[Tuple[str, str]]) -> NetworkElement:
    """Rewrite destination addresses according to static NAT rules and fan the
    packet out to the return-traffic and new-connection pipelines."""
    element = NetworkElement(
        name,
        input_ports=["in0"],
        output_ports=["to-return", "to-new"],
        kind="static-nat",
    )
    rewrite: Instruction = NoOp()
    for public, private in reversed(list(rules)):
        rewrite = If(
            Eq(IpDst, ip_to_number(public)),
            Assign(IpDst, ip_to_number(private)),
            rewrite,
        )
    element.set_input_program(
        "in0", InstructionBlock(rewrite, Fork("to-return", "to-new"))
    )
    return element


def build_asa(
    network: Network,
    name: str,
    config: Optional[AsaConfig] = None,
) -> AsaAttachment:
    """Add the ASA pipeline to ``network`` and return its attachment points."""
    config = config or AsaConfig()

    out_filter = build_acl_firewall(
        f"{name}-out-acl", config.outbound_rules, default_action="allow"
    )
    stateful = build_stateful_firewall(f"{name}-fw")
    options_out = build_tcp_options_filter(f"{name}-options-out", config.options_policy)
    options_in = build_tcp_options_filter(f"{name}-options-in", config.options_policy)
    static_nat = _static_dst_nat(f"{name}-static-nat", config.static_nat)
    in_filter = build_acl_firewall(
        f"{name}-in-acl", config.inbound_rules, default_action="deny"
    )

    elements = [out_filter, stateful, options_out, options_in, static_nat, in_filter]

    nat = None
    if config.enable_dynamic_nat:
        nat = build_nat(
            f"{name}-nat",
            public_address=config.public_address,
            port_range=config.nat_port_range,
        )
        elements.append(nat)

    network.add_elements(*elements)

    # Outbound chain: ACL -> stateful firewall -> (NAT) -> options.
    network.add_link((out_filter.name, "out0"), (stateful.name, "in0"))
    if nat is not None:
        network.add_link((stateful.name, "out0"), (nat.name, "in0"))
        network.add_link((nat.name, "out0"), (options_out.name, "in0"))
    else:
        network.add_link((stateful.name, "out0"), (options_out.name, "in0"))

    # Inbound chain: static NAT fans out to the return-traffic pipeline
    # (dynamic NAT reverse mapping + stateful check) and to the inbound ACL
    # for new connections; both feed the inbound options element.
    if nat is not None:
        network.add_link((static_nat.name, "to-return"), (nat.name, "in1"))
        network.add_link((nat.name, "out1"), (stateful.name, "in1"))
    else:
        network.add_link((static_nat.name, "to-return"), (stateful.name, "in1"))
    network.add_link((stateful.name, "out1"), (options_in.name, "in0"))
    network.add_link((static_nat.name, "to-new"), (in_filter.name, "in0"))
    network.add_link((in_filter.name, "out0"), (options_in.name, "in0"))

    return AsaAttachment(
        inside_entry=(out_filter.name, "in0"),
        outside_exit=(options_out.name, "out0"),
        outside_entry=(static_nat.name, "in0"),
        inside_exit=(options_in.name, "out0"),
        elements=[e.name for e in elements],
    )
