"""Ethernet switch models (§7, "Modeling switch behaviour").

Three encodings of the same MAC table are provided, matching the evaluation
of Figure 8:

* **basic** — a lookup table with one ``If`` per MAC entry, applied on
  ingress.  This mimics what a generic symbolic execution tool would do with
  switch forwarding code: the branching factor equals the number of entries.
* **ingress** — MACs grouped per output port; an ``If`` cascade with one
  disjunction per port.  Branching is optimal (one path per port) but a path
  through the k-th port accumulates the negated disjunctions of the first
  k−1 ports, so the total constraint count grows quadratically.
* **egress** — the packet is forked to every output port and each output
  port constrains the destination MAC to its own group.  Branching is
  optimal *and* the constraint count is linear; this is the model the paper
  (and this library) uses everywhere else.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Mapping, Sequence

from repro.network.element import NetworkElement, WILDCARD_PORT
from repro.sefl.expressions import Eq, OneOf, Or
from repro.sefl.fields import EtherDst
from repro.sefl.instructions import (
    Constrain,
    Fail,
    Fork,
    Forward,
    If,
    Instruction,
    InstructionBlock,
    NoOp,
)

# A MAC table groups the 48-bit MAC addresses reachable through each output
# port: ``{"out0": [mac, mac, ...], "out1": [...]}``.
MacTable = Mapping[str, Sequence[int]]


class SwitchModelStyle(str, Enum):
    BASIC = "basic"
    INGRESS = "ingress"
    EGRESS = "egress"


def _ordered_ports(table: MacTable) -> List[str]:
    return list(table.keys())


def switch_basic(name: str, table: MacTable, input_ports: Sequence[str] = ("in0",)) -> NetworkElement:
    """One ``If`` per MAC entry — the strawman a generic tool would produce."""
    element = NetworkElement(
        name, input_ports=list(input_ports), output_ports=_ordered_ports(table), kind="switch"
    )
    program: Instruction = Fail("Mac unknown")
    # Build the cascade from the last entry backwards so the first table entry
    # is checked first.
    entries = [
        (port, mac) for port in _ordered_ports(table) for mac in table[port]
    ]
    for port, mac in reversed(entries):
        program = If(Eq(EtherDst, mac), Forward(port), program)
    element.set_input_program(WILDCARD_PORT, program)
    return element


def switch_ingress(name: str, table: MacTable, input_ports: Sequence[str] = ("in0",)) -> NetworkElement:
    """Group MACs per output port and decide on ingress (quadratic constraints)."""
    element = NetworkElement(
        name, input_ports=list(input_ports), output_ports=_ordered_ports(table), kind="switch"
    )
    program: Instruction = Fail("Mac unknown")
    for port in reversed(_ordered_ports(table)):
        macs = table[port]
        if not macs:
            continue
        condition = Or(*[Eq(EtherDst, mac) for mac in macs])
        program = If(condition, Forward(port), program)
    element.set_input_program(WILDCARD_PORT, program)
    return element


def switch_egress(name: str, table: MacTable, input_ports: Sequence[str] = ("in0",)) -> NetworkElement:
    """Fork to all ports and filter on egress (optimal branching and constraints)."""
    ports = _ordered_ports(table)
    element = NetworkElement(
        name, input_ports=list(input_ports), output_ports=ports, kind="switch"
    )
    element.set_input_program(WILDCARD_PORT, Fork(*ports))
    for port in ports:
        macs = table[port]
        if macs:
            element.set_output_program(port, Constrain(OneOf(EtherDst, macs)))
        else:
            element.set_output_program(port, Fail("no MACs on this port"))
    return element


def build_switch(
    name: str,
    table: MacTable,
    style: SwitchModelStyle = SwitchModelStyle.EGRESS,
    input_ports: Sequence[str] = ("in0",),
) -> NetworkElement:
    """Build a switch model with the requested encoding."""
    style = SwitchModelStyle(style)
    if style is SwitchModelStyle.BASIC:
        return switch_basic(name, table, input_ports)
    if style is SwitchModelStyle.INGRESS:
        return switch_ingress(name, table, input_ports)
    return switch_egress(name, table, input_ports)


def learning_switch_flood(
    name: str, ports: Sequence[str], input_ports: Sequence[str] = ("in0",)
) -> NetworkElement:
    """A degenerate switch that floods every packet to all ports (used as a
    stress-test topology element and to exercise loop detection)."""
    element = NetworkElement(
        name, input_ports=list(input_ports), output_ports=list(ports), kind="switch"
    )
    element.set_input_program(WILDCARD_PORT, Fork(*ports))
    for port in ports:
        element.set_output_program(port, NoOp())
    return element
