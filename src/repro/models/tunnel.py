"""IP-in-IP tunnel models (§2 and §7, Figure 6).

Encapsulation allocates a fresh outer IPv4 header *in front of* the current
L3 header (at ``Tag("L3") - 160``) and re-points the L3 tag at it, exactly
like the physical layout in Figure 6.  Decapsulation deallocates the outer
header fields and moves the L3 tag back.  Because the inner header's value
stacks are untouched, invariance of the original packet across the tunnel is
provable — the property HSA cannot express (§2).

The same model is reused for every encapsulation level (the paper's
model-independence argument against NOD): nesting tunnels simply stacks
another 160-bit header in front.
"""

from __future__ import annotations

from typing import Optional

from repro.network.element import NetworkElement
from repro.sefl.expressions import Eq, Plus
from repro.sefl.fields import (
    IP_HEADER_BITS,
    IpDst,
    IpLength,
    IpProto,
    IpSrc,
    IpTtl,
    IpVersion,
    PROTO_IPIP,
    Tag,
)
from repro.sefl.instructions import (
    Allocate,
    Assign,
    Constrain,
    CreateTag,
    Deallocate,
    Forward,
    InstructionBlock,
)
from repro.sefl.util import ip_to_number

# The outer-header fields we materialise; offsets are relative to the new L3
# position (Tag("L3") - IP_HEADER_BITS before re-tagging).
_OUTER_FIELDS = (
    (IpVersion.offset, IpVersion.width),
    (IpLength.offset, IpLength.width),
    (IpTtl.offset, IpTtl.width),
    (IpProto.offset, IpProto.width),
    (IpSrc.offset, IpSrc.width),
    (IpDst.offset, IpDst.width),
)

# IPv4 header length in bytes (IpLength counts bytes).
_IP_HEADER_BYTES = IP_HEADER_BITS // 8


def build_encapsulator(
    name: str,
    tunnel_src: str,
    tunnel_dst: str,
    ttl: int = 64,
) -> NetworkElement:
    """IP-in-IP encapsulation endpoint (the paper's E1 / E2 boxes)."""
    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="tunnel-encap"
    )
    outer_base = Tag("L3") - IP_HEADER_BITS

    instructions = []
    for offset, width in _OUTER_FIELDS:
        instructions.append(Allocate(outer_base + offset, width))
    instructions.extend(
        [
            Assign(outer_base + IpVersion.offset, 4),
            # Outer length = inner length + one IPv4 header.
            Assign(outer_base + IpLength.offset, Plus(IpLength, _IP_HEADER_BYTES)),
            Assign(outer_base + IpTtl.offset, ttl),
            Assign(outer_base + IpProto.offset, PROTO_IPIP),
            Assign(outer_base + IpSrc.offset, ip_to_number(tunnel_src)),
            Assign(outer_base + IpDst.offset, ip_to_number(tunnel_dst)),
            # Re-point L3 at the outer header: from now on IpSrc/IpDst refer
            # to the tunnel endpoints, as they would on the wire.
            CreateTag("L3", outer_base),
            Forward("out0"),
        ]
    )
    element.set_input_program("in0", InstructionBlock(*instructions))
    return element


def build_decapsulator(name: str, require_ipip: bool = True) -> NetworkElement:
    """IP-in-IP decapsulation endpoint (the paper's D1 / D2 boxes).

    The model is identical for every decapsulation level: it removes the
    outer header currently designated by the L3 tag and re-points the tag at
    the header 160 bits further in.
    """
    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="tunnel-decap"
    )
    instructions = []
    if require_ipip:
        instructions.append(Constrain(Eq(IpProto, PROTO_IPIP)))
    for offset, width in _OUTER_FIELDS:
        instructions.append(Deallocate(Tag("L3") + offset, width))
    instructions.extend(
        [
            CreateTag("L3", Tag("L3") + IP_HEADER_BITS),
            Forward("out0"),
        ]
    )
    element.set_input_program("in0", InstructionBlock(*instructions))
    return element


def build_mtu_filter(name: str, mtu_bytes: int) -> NetworkElement:
    """A router hop that drops packets whose IP length exceeds ``mtu_bytes``
    (used by the Split-TCP MTU case study, §8.4)."""
    from repro.sefl.expressions import Le

    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="mtu-filter"
    )
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(Le(IpLength, mtu_bytes)),
            Forward("out0"),
        ),
    )
    return element
