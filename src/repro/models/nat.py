"""Network address translator model (§7, "Modeling a Network Address Translator").

The NAT rewrites the source address/port of outgoing packets and restores the
mapping for return traffic.  The mapped port is quasi-random in practice, so
the model assigns a fresh symbolic value constrained to the NAT's port range
and "remembers" the mapping by storing it in *local* packet metadata — the
technique the paper uses for all per-flow state, which avoids state explosion
as long as flows are independent.

Port 0 ("inside") carries outgoing traffic, port 1 ("outside") carries return
traffic, exactly as in the paper's listing.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.network.element import NetworkElement
from repro.sefl.expressions import Eq, Ge, Le, Ne, SymbolicValue
from repro.sefl.fields import IpDst, IpProto, IpSrc, TcpDst, TcpSrc, PROTO_TCP
from repro.sefl.instructions import (
    Allocate,
    Assign,
    Constrain,
    Forward,
    InstructionBlock,
    LOCAL,
)
from repro.sefl.util import ip_to_number


def build_nat(
    name: str,
    public_address: str = "141.85.37.1",
    port_range: Tuple[int, int] = (1024, 65535),
) -> NetworkElement:
    """Build a TCP NAT with the paper's metadata-based state encoding.

    Outgoing packets enter ``in0`` and leave ``out0``; return packets enter
    ``in1`` and leave ``out1``.
    """
    element = NetworkElement(
        name,
        input_ports=["in0", "in1"],
        output_ports=["out0", "out1"],
        kind="nat",
    )
    public = ip_to_number(public_address)
    low, high = port_range

    outgoing = InstructionBlock(
        Constrain(Eq(IpProto, PROTO_TCP)),
        Allocate("orig-ip", 32, LOCAL),
        Allocate("orig-port", 16, LOCAL),
        Allocate("new-ip", 32, LOCAL),
        Allocate("new-port", 16, LOCAL),
        Assign("orig-ip", IpSrc),
        Assign("orig-port", TcpSrc),
        Assign(IpSrc, public),
        Assign(TcpSrc, SymbolicValue("nat_port", 16)),
        Constrain(Ge(TcpSrc, low)),
        Constrain(Le(TcpSrc, high)),
        Assign("new-ip", IpSrc),
        Assign("new-port", TcpSrc),
        Forward("out0"),
    )

    incoming = InstructionBlock(
        Constrain(Eq(IpProto, PROTO_TCP)),
        Constrain(Eq(IpDst, "new-ip")),
        Constrain(Eq(TcpDst, "new-port")),
        Assign(IpDst, "orig-ip"),
        Assign(TcpDst, "orig-port"),
        Forward("out1"),
    )

    element.set_input_program("in0", outgoing)
    element.set_input_program("in1", incoming)
    return element
