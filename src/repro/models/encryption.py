"""Encrypted tunnel models (§7, "Modeling Encryption").

The model captures exactly the two properties the paper cares about:

* after encryption no box can read the original payload — the payload is
  masked by a *new allocation* holding a fresh symbolic value;
* decryption with the matching key restores the original payload — the
  masking allocation is popped, revealing the untouched value stack below.

Predicting the ciphertext is deliberately out of scope, as in the paper.
"""

from __future__ import annotations

from repro.network.element import NetworkElement
from repro.sefl.expressions import Eq, SymbolicValue
from repro.sefl.fields import TcpPayload
from repro.sefl.instructions import (
    Allocate,
    Assign,
    Constrain,
    Deallocate,
    Forward,
    InstructionBlock,
)


def build_encryptor(name: str, key: int) -> NetworkElement:
    """Encrypt the TCP payload with ``key``.

    The key travels as packet metadata so that the decryptor can check it —
    the paper's code stores it in the ``"Key"`` map entry.
    """
    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="encryptor"
    )
    element.set_input_program(
        "in0",
        InstructionBlock(
            Allocate("Key", 32),
            Assign("Key", key),
            # Mask the payload: any later read sees an opaque fresh symbol.
            Allocate(TcpPayload, TcpPayload.width),
            Assign(TcpPayload, SymbolicValue("ciphertext", TcpPayload.width)),
            Forward("out0"),
        ),
    )
    return element


def build_decryptor(name: str, key: int) -> NetworkElement:
    """Decrypt the TCP payload, succeeding only when the key matches."""
    element = NetworkElement(
        name, input_ports=["in0"], output_ports=["out0"], kind="decryptor"
    )
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(Eq("Key", key)),
            Deallocate(TcpPayload, TcpPayload.width),
            Deallocate("Key"),
            Forward("out0"),
        ),
    )
    return element
