"""Ready-made SEFL models of network boxes (§7 of the paper).

Every function here returns either a packet-construction program (host
models) or a fully wired :class:`repro.network.NetworkElement`.  The models
follow the encodings the paper argues for: optimal branching factor (at most
one path per output link), egress filtering to minimise constraint counts,
per-flow state carried in packet metadata, and map-based ("pre-parsed") TCP
options.
"""

from repro.models.host import (
    ethernet_header,
    ip_header,
    symbolic_ip_packet,
    symbolic_tcp_packet,
    symbolic_udp_packet,
    tcp_header,
    udp_header,
)
from repro.models.switch import (
    SwitchModelStyle,
    build_switch,
    switch_basic,
    switch_egress,
    switch_ingress,
)
from repro.models.router import (
    RouterModelStyle,
    build_router,
    group_prefixes_by_port,
    router_basic,
    router_egress,
    router_ingress,
)
from repro.models.nat import build_nat
from repro.models.firewall import build_acl_firewall, build_stateful_firewall
from repro.models.tunnel import build_decapsulator, build_encapsulator
from repro.models.encryption import build_decryptor, build_encryptor
from repro.models.tcp_options import (
    ASA_DEFAULT_OPTION_POLICY,
    OPTION_MSS,
    OPTION_MPTCP,
    OPTION_SACK_OK,
    OPTION_TIMESTAMP,
    OPTION_WSCALE,
    build_tcp_options_filter,
    tcp_options_metadata,
)
from repro.models.asa import build_asa
from repro.models.mirror import build_ip_mirror

__all__ = [
    "ASA_DEFAULT_OPTION_POLICY",
    "OPTION_MSS",
    "OPTION_MPTCP",
    "OPTION_SACK_OK",
    "OPTION_TIMESTAMP",
    "OPTION_WSCALE",
    "RouterModelStyle",
    "SwitchModelStyle",
    "build_acl_firewall",
    "build_asa",
    "build_decapsulator",
    "build_decryptor",
    "build_encapsulator",
    "build_encryptor",
    "build_ip_mirror",
    "build_nat",
    "build_router",
    "build_stateful_firewall",
    "build_switch",
    "build_tcp_options_filter",
    "ethernet_header",
    "group_prefixes_by_port",
    "ip_header",
    "router_basic",
    "router_egress",
    "router_ingress",
    "switch_basic",
    "switch_egress",
    "switch_ingress",
    "symbolic_ip_packet",
    "symbolic_tcp_packet",
    "symbolic_udp_packet",
    "tcp_header",
    "tcp_options_metadata",
    "udp_header",
]
