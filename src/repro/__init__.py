"""SymNet reproduction — scalable symbolic execution for modern networks.

A from-scratch Python implementation of the system described in
"SymNet: scalable symbolic execution for modern networks"
(Stoenescu, Popovici, Negreanu, Raiciu — SIGCOMM 2016).

Package map
-----------

============================  ==================================================
``repro.sefl``                SEFL modeling language (instructions, expressions,
                              header fields, tags)
``repro.core``                the symbolic execution engine and verification
                              queries (reachability, loops, invariants, …)
``repro.solver``              the constraint solver backing the engine (the role
                              Z3 plays in the paper)
``repro.network``             topology model: elements, ports, links
``repro.models``              ready-made models: switches, routers, NATs,
                              firewalls, tunnels, encryption, TCP options, ASA
``repro.click``               Click modular router elements and config parser
``repro.parsers``             MAC table / FIB / ASA / topology file parsers
``repro.baselines``           Header Space Analysis and a Klee-style byte-level
                              symbolic executor used as evaluation baselines
``repro.testing``             conformance testing of models against a concrete
                              reference dataplane (§8.3)
``repro.workloads``           synthetic workload generators used by the
                              benchmark harness
``repro.store``               persistent verification store: disk-backed
                              verdict shards, the sharded shared tier, and the
                              plan-result cache
============================  ==================================================

Quickstart
----------

>>> from repro import Network, SymbolicExecutor, models
>>> net = Network()
>>> net.add_element(models.build_switch("sw", {"out0": [0xAA], "out1": [0xBB]}))
>>> result = SymbolicExecutor(net).inject(models.symbolic_tcp_packet(), "sw", "in0")
>>> sorted(p.last_port.port for p in result.delivered())
['out0', 'out1']
"""

from repro.core import (
    ExecutionResult,
    ExecutionSettings,
    ExecutionState,
    PathRecord,
    SymbolicExecutor,
    verification,
)
from repro.network import Network, NetworkElement
from repro.solver import Solver
from repro import api, models, sefl
from repro.api import NetworkModel

__version__ = "1.0.0"

__all__ = [
    "ExecutionResult",
    "ExecutionSettings",
    "ExecutionState",
    "Network",
    "NetworkElement",
    "NetworkModel",
    "PathRecord",
    "Solver",
    "SymbolicExecutor",
    "api",
    "models",
    "sefl",
    "verification",
    "__version__",
]
