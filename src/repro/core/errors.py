"""Exception hierarchy for the SymNet core."""


class SymNetError(Exception):
    """Base class for all SymNet errors."""


class MemorySafetyError(SymNetError):
    """A header access violated SEFL's memory-safety rules.

    Raised when code reads or writes an unallocated header address, uses a
    misaligned address, deallocates with the wrong size, or references a tag
    that does not exist.  The engine converts this into a failed execution
    path, which is exactly how the paper reports encapsulation bugs caught by
    "header memory safety" (§6).
    """


class ModelError(SymNetError):
    """A SEFL model is structurally invalid (bad port reference, a loop body
    that is not callable, output-port code trying to forward, …)."""
