"""Deprecated home of the path-level verification checks.

Every free function that used to live here moved verbatim to
:mod:`repro.core.checks` (re-exported as ``repro.api.checks``); network-wide
questions should go through the :class:`repro.api.NetworkModel` session API,
which compiles batches of declarative queries onto one shared campaign plan.

Importing this module is free; *calling* any of its functions emits a
:class:`DeprecationWarning` and delegates to the new implementation, so
existing code keeps producing bit-identical answers while it migrates.
"""

from __future__ import annotations

import functools
import warnings

from repro.core import checks as _checks

__all__ = [
    "reachable_paths",
    "is_reachable",
    "admitted_values",
    "state_subsumed",
    "find_loops",
    "field_invariant",
    "values_equal",
    "header_visible",
    "field_concrete_value",
    "memory_safety_violations",
    "constraint_violations",
]


def _deprecated_shim(name: str):
    impl = getattr(_checks, name)

    @functools.wraps(impl)
    def shim(*args, **kwargs):
        warnings.warn(
            f"repro.core.verification.{name} is deprecated; use "
            f"repro.api.checks.{name} (or the repro.api.NetworkModel query "
            "API for network-wide questions)",
            DeprecationWarning,
            stacklevel=2,
        )
        return impl(*args, **kwargs)

    return shim


for _name in __all__:
    globals()[_name] = _deprecated_shim(_name)
del _name
