"""Verification campaigns: fan one network out across many injection ports.

The engine answers questions about one injection port at a time; the claims
that matter operationally are network-wide.  A :class:`VerificationCampaign`
takes a network *source*, a set of injection points and packet templates,
runs one :class:`~repro.core.engine.SymbolicExecutor` job per injection
point — concurrently on a process pool when asked — and aggregates the
per-job reports into the query objects of :mod:`repro.core.queries`.

Process-pool execution never ships a :class:`~repro.network.topology.Network`
across the process boundary: SEFL programs contain closures (``For`` bodies)
that do not pickle.  Instead each job carries a :class:`NetworkSource` — a
picklable *recipe* ("load this directory", "build this workload with these
options") — and each worker process rebuilds the network once, caches it,
and reuses it (plus its solver memo cache) for every job it receives.
Networks built in-process (``NetworkSource.from_network``) cannot be
shipped, so those campaigns transparently fall back to in-process execution.

The aggregation is order-independent, so a campaign run on ``--workers N``
produces bit-identical query results to a sequential run.
"""

from __future__ import annotations

import hashlib
import logging
import os
import random
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.delta import (
    CampaignBaseline,
    ElementManifest,
    affected_injections,
    baseline_payload,
    diff_manifests,
    report_from_payload,
)
from repro.core.engine import ExecutionSettings, SymbolicExecutor
from repro.core.errors import MemorySafetyError
from repro.core.paths import ExecutionResult, PathStatus
from repro.core.queries import (
    CampaignStats,
    InvariantReport,
    LoopFinding,
    LoopReport,
    ReachabilityMatrix,
    port_key,
)
from repro.core.checks import admitted_values, field_invariant, header_visible
from repro.models import host as host_models
from repro.network.topology import Network
from repro.network.view import (
    CampaignSymmetryView,
    SymmetryUnsupported,
    build_renaming,
    collect_constants,
    config_digest,
)
from repro.sefl.fields import standard_fields
from repro.solver.solver import Solver
from repro.solver.verdict_cache import (
    CacheConflictError,
    VerdictCache,
    resolve_verdict,
)
from repro.store.sharding import (
    DEFAULT_PUBLISH_BATCH,
    DEFAULT_SHARD_COUNT,
    ShardedTier,
)
from repro.obs import (
    Tracer,
    get_tracer,
    record_campaign_stats,
    record_job_report,
    set_tracer,
)

_LOG = logging.getLogger(__name__)

#: Packet templates a campaign (and the CLI) can inject, by name.
PACKET_TEMPLATES = {
    "tcp": host_models.symbolic_tcp_packet,
    "udp": host_models.symbolic_udp_packet,
    "ip": host_models.symbolic_ip_packet,
    "icmp": host_models.symbolic_icmp_packet,
}

QUERY_REACHABILITY = "reachability"
QUERY_LOOPS = "loops"
QUERY_INVARIANTS = "invariants"
#: Query names the campaign understands; see queries.py for how to add one.
CAMPAIGN_QUERIES = (QUERY_REACHABILITY, QUERY_LOOPS, QUERY_INVARIANTS)

#: Header fields whose invariance the ``invariants`` query checks by default.
DEFAULT_INVARIANT_FIELDS = ("IpSrc", "IpDst")


# ---------------------------------------------------------------------------
# Network sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NetworkSource:
    """A picklable recipe for (re)building a network in a worker process.

    ``kind`` is one of ``"directory"`` (a §7.1 snapshot directory),
    ``"workload"`` (a registered synthetic workload builder) or ``"object"``
    (an in-process :class:`Network`, which forces in-process execution).

    ``fingerprint`` pins directory sources to the state of every file in the
    directory (topology *and* device snapshots) at source-creation time, so
    the per-process runtime cache does not serve a stale network after any
    of them is edited between campaigns.
    """

    kind: str
    directory: Optional[str] = None
    workload: Optional[str] = None
    options: Tuple[Tuple[str, object], ...] = ()
    fingerprint: Tuple = ()
    network: Optional[Network] = field(default=None, compare=False, repr=False)

    @classmethod
    def from_directory(cls, directory: str) -> "NetworkSource":
        directory = os.path.abspath(directory)
        entries = []
        try:
            for entry in os.scandir(directory):
                if entry.is_file():
                    stat = entry.stat()
                    entries.append((entry.name, stat.st_mtime_ns, stat.st_size))
        except OSError:
            pass
        return cls(
            kind="directory",
            directory=directory,
            fingerprint=tuple(sorted(entries)),
        )

    @classmethod
    def from_workload(cls, name: str, **options: object) -> "NetworkSource":
        return cls(
            kind="workload",
            workload=name,
            options=tuple(sorted(options.items())),
        )

    @classmethod
    def from_network(cls, network: Network) -> "NetworkSource":
        return cls(kind="object", network=network)

    @property
    def picklable(self) -> bool:
        return self.kind != "object"

    def cache_key(self) -> Tuple:
        if self.kind == "object":
            return ("object", id(self.network))
        return (
            self.kind,
            self.directory,
            self.workload,
            self.options,
            self.fingerprint,
        )

    def describe(self) -> str:
        if self.kind == "directory":
            return self.directory or "<directory>"
        if self.kind == "workload":
            opts = ", ".join(f"{k}={v}" for k, v in self.options)
            return f"workload:{self.workload}({opts})"
        return f"network:{self.network.name if self.network else '?'}"

    def build_full(self) -> Tuple[Network, Optional[List[Tuple[str, str]]]]:
        """Build the network plus the source's registered injection ports
        (``None`` when the source kind does not define any)."""
        if self.kind == "directory":
            from repro.parsers.topology_file import load_network_directory

            return load_network_directory(self.directory), None
        if self.kind == "workload":
            from repro.workloads import build_campaign_network

            return build_campaign_network(self.workload, **dict(self.options))
        if self.kind == "object":
            if self.network is None:
                raise ValueError("object network source lost its network")
            return self.network, None
        raise ValueError(f"unknown network source kind {self.kind!r}")

    def build(self) -> Network:
        return self.build_full()[0]


def _merge_verdict_entries(
    target: Dict[str, str],
    entries: Iterable[Tuple[str, str]],
    context: str,
) -> None:
    """Fold (fingerprint, verdict) pairs into ``target`` under the one
    verdict-combination policy (:func:`resolve_verdict`): definite verdicts
    supersede "unknown"s, definite-vs-definite disagreement is fatal."""
    for fingerprint, verdict in entries:
        action = resolve_verdict(target.get(fingerprint), verdict)
        if action == "conflict":
            raise CacheConflictError(
                f"{context} on fingerprint {fingerprint[:12]}…: "
                f"{target[fingerprint]!r} vs {verdict!r}"
            )
        if action == "replace":
            target[fingerprint] = verdict


def default_injection_ports(
    network: Network,
    registered: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[Tuple[str, str]]:
    """The one default-injection policy, shared by campaigns and the API's
    NetworkModel: the source's registered entry ports, else every free input
    port, else (fully wired rings, which have no free edges) every input
    port."""
    if registered:
        return list(registered)
    free = free_input_ports(network)
    if free:
        return free
    return [
        (element.name, port)
        for element in network
        for port in element.input_ports
    ]


def free_input_ports(network: Network) -> List[Tuple[str, str]]:
    """Input ports with no incoming link — the natural injection points.

    Links whose *source* element does not exist (dangling links kept by the
    permissive topology parser) carry no traffic, so they do not count as
    wiring: their destination ports stay injectable.
    """
    wired = {
        (link.destination.element, link.destination.port)
        for link in network.links
        if network.has_element(link.source.element)
    }
    return [
        (element.name, port)
        for element in network
        for port in element.input_ports
        if (element.name, port) not in wired
    ]


# ---------------------------------------------------------------------------
# Jobs and per-job reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PortFacts:
    """Per-injection narrowing of the facts one job must collect.

    The API planner computes, for every injection port, the union of the
    fact requirements of exactly the queries that *need that port* — not the
    whole batch (see :func:`repro.api.planner.compile_plan`).  A campaign
    applies these as per-job overrides of its global fact template, so a
    port only pays for the channels some query will actually read.
    """

    queries: Tuple[str, ...]
    invariant_fields: Tuple[str, ...] = ()
    visibility_fields: Tuple[str, ...] = ()
    witness_fields: Tuple[Tuple[str, int], ...] = ()
    record_examples: bool = False


@dataclass(frozen=True)
class CampaignJob:
    """One unit of campaign work: inject one packet template at one port.

    Everything in here must pickle: the network is referenced by recipe, the
    packet by template name, header overrides by field *name*, the strategy
    by registry name.
    """

    source: NetworkSource
    element: str
    port: str
    packet: str = "tcp"
    field_values: Tuple[Tuple[str, int], ...] = ()
    queries: Tuple[str, ...] = CAMPAIGN_QUERIES
    invariant_fields: Tuple[str, ...] = DEFAULT_INVARIANT_FIELDS
    #: Fields whose header visibility (is the source's symbol still readable?)
    #: is checked per delivered destination — fed by the API planner's
    #: ``HeaderVisible`` queries.
    visibility_fields: Tuple[str, ...] = ()
    #: (field, samples) pairs: collect up to ``samples`` concrete witness
    #: values per delivered destination — the ``AdmittedValues`` queries.
    witness_fields: Tuple[Tuple[str, int], ...] = ()
    #: Record one example port trace per delivered destination (evidence
    #: paths for ``Reach`` query results).
    record_examples: bool = False
    max_hops: int = 128
    max_paths: int = 1_000_000
    strategy: str = "dfs"
    use_incremental_solver: bool = True
    #: Share the worker's persistent verdict cache across jobs.  Off, every
    #: job solves with an isolated cache (the pre-cache baseline).
    use_verdict_cache: bool = True
    #: Verdict-cache entries (fingerprint, verdict) merged into the worker
    #: cache before the job runs — the campaign warm-start path.  The token
    #: identifies the warm map's content so each worker merges it only once
    #: per campaign, not once per job.
    warm_cache_entries: Tuple[Tuple[str, str], ...] = ()
    warm_cache_token: str = ""
    #: Persistent verdict store (repro.store): each worker process opens the
    #: store directory and merges its shards into the worker cache once per
    #: ``store_token`` (the store's content identity), instead of the
    #: campaign pickling warm entries into every job.
    store_dir: Optional[str] = None
    store_token: str = ""
    store_shards: int = DEFAULT_SHARD_COUNT
    #: Optional process-shared verdict tier (a sharded Manager-dict tier,
    #: see repro.store.sharding) consulted on local cache misses when the
    #: campaign runs on a process pool.
    shared_cache: Optional[object] = field(default=None, compare=False, repr=False)
    #: Record spans inside the (pool) worker and ship them back through
    #: ``JobReport.spans``.  Telemetry only — deliberately absent from
    #: ``_job_config_digest``, baselines and every report projection, so
    #: tracing can never move an answer or split a symmetry class.
    trace: bool = False

    @property
    def source_key(self) -> str:
        return port_key(self.element, self.port)


@dataclass
class JobReport:
    """Picklable digest of one job's :class:`ExecutionResult`.

    Only plain data crosses the process boundary — no states, no solver
    terms.  Queries that need solver work (invariants) run *in the worker*,
    where the states still exist.
    """

    element: str
    port: str
    packet: str
    status_counts: Dict[str, int] = field(default_factory=dict)
    delivered_to: Dict[str, int] = field(default_factory=dict)
    loops: List[Dict[str, object]] = field(default_factory=list)
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    invariants: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: field -> destination port -> {checked, visible, skipped} counters.
    visibility: Dict[str, Dict[str, Dict[str, int]]] = field(default_factory=dict)
    #: field -> destination port -> sorted concrete witness values.
    witnesses: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)
    #: destination port -> one example port trace demonstrating delivery.
    delivered_examples: Dict[str, List[str]] = field(default_factory=dict)
    truncated: bool = False
    error: Optional[str] = None
    worker_pid: int = 0
    elapsed_seconds: float = 0.0
    solver_calls: int = 0
    solver_time_seconds: float = 0.0
    solver_fast_paths: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    solver_shared_cache_hits: int = 0
    solver_cache_merged: int = 0
    solver_shared_round_trips: int = 0
    solver_shared_publish_batches: int = 0
    solver_shared_publish_entries: int = 0
    solver_degraded_operations: int = 0
    #: (fingerprint, verdict) pairs this job added to its worker's verdict
    #: cache — merged into the campaign-level cache by the aggregation.
    verdict_cache_entries: Tuple[Tuple[str, str], ...] = ()
    #: Symmetry-class identity (a canonical-form fingerprint prefix), set on
    #: both class representatives and instantiated members when the campaign
    #: ran with symmetry reduction.
    symmetry_class: str = ""
    #: For instantiated reports: the ``element:port`` of the representative
    #: job whose engine run this report was derived from.
    symmetry_instantiated_from: str = ""
    #: Set when delta verification spliced this report from a stored
    #: baseline instead of executing it ("store" or "file").
    delta_spliced_from: str = ""
    #: Span payloads recorded inside a pool worker (see repro.obs.trace),
    #: carried back for the driver to re-parent under its campaign span.
    #: Pure telemetry: excluded from ``to_dict``, ``semantic_projection``
    #: and delta baselines, so traced and untraced runs stay bit-identical.
    spans: Tuple[Dict[str, object], ...] = ()

    @property
    def source_key(self) -> str:
        return port_key(self.element, self.port)

    @property
    def path_count(self) -> int:
        return sum(self.status_counts.values())

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "injected_at": self.source_key,
            "packet": self.packet,
            "status_counts": dict(sorted(self.status_counts.items())),
            "delivered_to": dict(sorted(self.delivered_to.items())),
            "loops": list(self.loops),
            "drop_reasons": dict(sorted(self.drop_reasons.items())),
            "invariants": {k: dict(v) for k, v in sorted(self.invariants.items())},
        }
        # Planner-only facts stay out of legacy campaign reports entirely.
        if self.visibility:
            payload["visibility"] = {
                f: {d: dict(cell) for d, cell in sorted(row.items())}
                for f, row in sorted(self.visibility.items())
            }
        if self.witnesses:
            payload["witnesses"] = {
                f: {d: list(vals) for d, vals in sorted(row.items())}
                for f, row in sorted(self.witnesses.items())
            }
        if self.delivered_examples:
            payload["delivered_examples"] = {
                d: list(trace) for d, trace in sorted(self.delivered_examples.items())
            }
        if self.symmetry_class:
            payload["symmetry"] = {
                "class": self.symmetry_class,
                "instantiated_from": self.symmetry_instantiated_from or None,
            }
        if self.delta_spliced_from:
            payload["delta"] = {"spliced_from": self.delta_spliced_from}
        payload.update({
            "truncated": self.truncated,
            "error": self.error,
            "worker_pid": self.worker_pid,
            "stats": {
                "elapsed_seconds": self.elapsed_seconds,
                "solver_calls": self.solver_calls,
                "solver_time_seconds": self.solver_time_seconds,
                "solver_fast_paths": self.solver_fast_paths,
                "solver_cache_hits": self.solver_cache_hits,
                "solver_cache_misses": self.solver_cache_misses,
                "solver_shared_cache_hits": self.solver_shared_cache_hits,
                "solver_cache_merged": self.solver_cache_merged,
                "solver_shared_round_trips": self.solver_shared_round_trips,
                "solver_shared_publish_batches": self.solver_shared_publish_batches,
                "solver_shared_publish_entries": self.solver_shared_publish_entries,
                "solver_degraded_operations": self.solver_degraded_operations,
                "verdict_cache_entries": len(self.verdict_cache_entries),
            },
        })
        return payload


# Per-process runtime cache: one (network, solver, verdict cache) triple per
# network source, so a worker receiving many jobs builds the network once and
# keeps the canonical verdict cache warm across jobs.  Bounded LRU:
# long-lived processes running campaigns over many networks must not retain
# them all.
_RUNTIME_CACHE: "Dict[Tuple, Tuple[Network, Solver, VerdictCache]]" = {}
_RUNTIME_CACHE_LIMIT = 8


def clear_runtime_cache() -> None:
    """Drop every cached (network, solver, verdict cache) triple in this
    process."""
    _RUNTIME_CACHE.clear()


# In-process counters of symbolic-execution runs and of the fact channels
# (query kinds, invariant/visibility fields, witness samplers, example
# recorders) those runs collected, so tests (and the API planner's
# acceptance checks) can assert both how many engine jobs a batch of
# queries cost and how much per-job collection work the planner's per-port
# narrowing saved.  Per-process: pool workers count their own runs.
_EXECUTION_COUNTERS = {"engine_runs": 0, "fact_channels": 0}


def execution_counters() -> Dict[str, int]:
    """Snapshot of this process's campaign execution counters."""
    return dict(_EXECUTION_COUNTERS)


def reset_execution_counters() -> None:
    for key in _EXECUTION_COUNTERS:
        _EXECUTION_COUNTERS[key] = 0


def _job_fact_channels(job: "CampaignJob") -> int:
    """How many collection channels this job pays for (counted into
    ``execution_counters()['fact_channels']``)."""
    return (
        len(job.queries)
        + (len(job.invariant_fields) if QUERY_INVARIANTS in job.queries else 0)
        + len(job.visibility_fields)
        + len(job.witness_fields)
        + (1 if job.record_examples else 0)
    )


def _cache_runtime(key: Tuple, runtime: Tuple[Network, Solver, VerdictCache]) -> None:
    _RUNTIME_CACHE[key] = runtime
    while len(_RUNTIME_CACHE) > _RUNTIME_CACHE_LIMIT:
        _RUNTIME_CACHE.pop(next(iter(_RUNTIME_CACHE)))


def _runtime_for(source: NetworkSource) -> Tuple[Network, Solver, VerdictCache]:
    key = source.cache_key()
    runtime = _RUNTIME_CACHE.pop(key, None)
    if runtime is None:
        runtime = (source.build(), Solver(), VerdictCache())
    _cache_runtime(key, runtime)  # (re)insert at the end: LRU recency
    return runtime


def _seed_runtime(source: NetworkSource, network: Network) -> None:
    """Pre-populate the cache with an already-built network (in-process
    sequential runs and "object" sources)."""
    if source.cache_key() not in _RUNTIME_CACHE:
        _cache_runtime(source.cache_key(), (network, Solver(), VerdictCache()))


def _packet_program(job: CampaignJob):
    try:
        template = PACKET_TEMPLATES[job.packet]
    except KeyError:
        known = ", ".join(sorted(PACKET_TEMPLATES))
        raise ValueError(f"unknown packet template {job.packet!r}; known: {known}")
    if not job.field_values:
        return template()
    fields = standard_fields()
    overrides = {fields[name]: value for name, value in job.field_values}
    return template(overrides)


def _check_invariants(
    result: ExecutionResult, job: CampaignJob, solver: Solver
) -> Dict[str, Dict[str, int]]:
    """Field invariance on every delivered path, computed where the states
    live (worker side)."""
    fields = standard_fields()
    report: Dict[str, Dict[str, int]] = {}
    for name in job.invariant_fields:
        variable = fields.get(name, name)
        checked = held = skipped = 0
        for path in result.delivered():
            try:
                holds = field_invariant(path, variable, solver)
            except MemorySafetyError:
                # The template did not allocate this field (e.g. TcpDst on
                # an ICMP packet): skipped, not a verdict.  Anything else
                # propagates — a broken query must not masquerade as an
                # inapplicable field (it becomes the job's error).
                skipped += 1
                continue
            checked += 1
            held += 1 if holds else 0
        report[name] = {"checked": checked, "held": held, "skipped": skipped}
    return report


def _check_visibility(
    result: ExecutionResult, job: CampaignJob, solver: Solver
) -> Dict[str, Dict[str, Dict[str, int]]]:
    """Per-destination header visibility: is the symbol the source wrote into
    the field still provably readable where the packet was delivered?"""
    fields = standard_fields()
    report: Dict[str, Dict[str, Dict[str, int]]] = {}
    for name in job.visibility_fields:
        variable = fields.get(name, name)
        per_destination: Dict[str, Dict[str, int]] = {}
        for path in result.delivered():
            destination = str(path.last_port)
            cell = per_destination.setdefault(
                destination, {"checked": 0, "visible": 0, "skipped": 0}
            )
            try:
                history = path.state.variable_history(variable)
                if not history:
                    cell["skipped"] += 1
                    continue
                visible = header_visible(path, variable, history[0], solver)
            except MemorySafetyError:
                cell["skipped"] += 1
                continue
            cell["checked"] += 1
            cell["visible"] += 1 if visible else 0
        report[name] = per_destination
    return report


def _collect_witnesses(
    result: ExecutionResult, job: CampaignJob, solver: Solver
) -> Dict[str, Dict[str, List[int]]]:
    """Concrete admitted values per delivered destination, up to the
    requested sample count per (field, destination).  Paths are scanned in
    the engine's (deterministic) discovery order, so the collected sets are
    reproducible; the final per-destination lists are sorted."""
    fields = standard_fields()
    report: Dict[str, Dict[str, List[int]]] = {}
    for name, samples in job.witness_fields:
        variable = fields.get(name, name)
        per_destination: Dict[str, List[int]] = {}
        for path in result.delivered():
            destination = str(path.last_port)
            found = per_destination.setdefault(destination, [])
            if len(found) >= samples:
                continue
            try:
                values = admitted_values(path, variable, solver, samples)
            except MemorySafetyError:
                continue
            for value in values:
                if value not in found:
                    found.append(value)
                if len(found) >= samples:
                    break
        report[name] = {
            destination: sorted(values)
            for destination, values in per_destination.items()
        }
    return report


def execute_job(job: CampaignJob) -> JobReport:
    """Run one campaign job in this process and digest the result.

    This is the process-pool entry point; it must stay a module-level
    function so it pickles by reference.

    Tracing: ``job.trace`` (set only on pool submissions) installs a fresh
    local tracer for the duration of the job and ships its spans back in
    ``report.spans`` — the picklable channel the driver re-parents from.
    It must not consult the process-global tracer: forked workers inherit
    the driver's *enabled* tracer, whose forked copy can never deliver
    spans back.  In-process execution (``job.trace`` unset) records
    straight into the caller's tracer and nests naturally under the open
    campaign span.
    """
    tracer = get_tracer()
    local: Optional[Tracer] = None
    previous = None
    if job.trace:
        local = Tracer()
        previous = set_tracer(local)
        tracer = local
    try:
        with tracer.span(
            "job", element=job.element, port=job.port, packet=job.packet
        ):
            report = _execute_job_impl(job)
    finally:
        if local is not None:
            set_tracer(previous)
    if local is not None:
        report.spans = tuple(local.export())
    return report


def _execute_job_impl(job: CampaignJob) -> JobReport:
    report = JobReport(
        element=job.element, port=job.port, packet=job.packet, worker_pid=os.getpid()
    )
    try:
        network, solver, worker_cache = _runtime_for(job.source)
        # ``use_verdict_cache`` off isolates the job from the worker's
        # persistent cache (and from the shared tier): the baseline the
        # cache benchmarks compare against.
        cache = worker_cache if job.use_verdict_cache else VerdictCache()
        merged = 0
        if (
            job.warm_cache_entries
            and job.warm_cache_token not in cache.applied_tokens
        ):
            merged = cache.merge(dict(job.warm_cache_entries))
            cache.applied_tokens.add(job.warm_cache_token)
            solver.stats.record_merged_entries(merged)
        if (
            job.use_verdict_cache
            and job.store_dir
            and job.store_token
            and job.store_token not in cache.applied_tokens
        ):
            # Warm-from-disk: each worker opens the store once per store
            # state and merges its shards locally — no entries travel in
            # job pickles.  Live verdicts outrank stored ones
            # (strict=False): a corrupted-but-well-formed segment entry
            # must degrade the cache, never crash the job.
            try:
                from repro.store import VerificationStore

                store = VerificationStore(job.store_dir, shards=job.store_shards)
                loaded = cache.merge(store.load(), strict=False)
            except Exception as exc:
                # An unreadable store only loses the warm start; the job
                # still solves everything live.  Count the degrade (it
                # rolls up into CampaignStats.degraded_operations) and say
                # so — a silently cold cache looks like a perf regression.
                loaded = 0
                solver.stats.record_degraded_operation()
                _LOG.warning(
                    "verdict store %s unusable, job %s:%s runs cold: %s",
                    job.store_dir, job.element, job.port, exc,
                )
            cache.applied_tokens.add(job.store_token)
            merged += loaded
            solver.stats.record_merged_entries(loaded)
        cache.begin_collection()
        settings = ExecutionSettings(
            max_hops=job.max_hops,
            max_paths=job.max_paths,
            strategy=job.strategy,
            use_incremental_solver=job.use_incremental_solver,
        )
        executor = SymbolicExecutor(
            network,
            solver=solver,
            settings=settings,
            verdict_cache=cache,
            shared_cache=job.shared_cache if job.use_verdict_cache else None,
        )
        _EXECUTION_COUNTERS["engine_runs"] += 1
        _EXECUTION_COUNTERS["fact_channels"] += _job_fact_channels(job)
        result = executor.inject(_packet_program(job), job.element, job.port)
    except Exception as exc:  # surface, never kill the whole campaign
        report.error = f"{type(exc).__name__}: {exc}"
        return report

    report.status_counts = result.summary_counts()
    report.truncated = result.truncated
    report.elapsed_seconds = result.elapsed_seconds
    report.solver_calls = result.solver_calls
    report.solver_time_seconds = result.solver_time_seconds
    report.solver_fast_paths = result.solver_fast_paths
    report.solver_cache_hits = result.solver_cache_hits
    report.solver_cache_misses = result.solver_cache_misses
    report.solver_shared_cache_hits = result.solver_shared_cache_hits
    report.solver_cache_merged = merged
    report.solver_shared_round_trips = result.solver_shared_round_trips
    report.solver_shared_publish_batches = result.solver_shared_publish_batches
    report.solver_shared_publish_entries = result.solver_shared_publish_entries
    report.solver_degraded_operations = result.solver_degraded_operations
    report.verdict_cache_entries = tuple(sorted(cache.fresh_entries().items()))

    try:
        if QUERY_REACHABILITY in job.queries:
            for path in result.delivered():
                destination = str(path.last_port)
                report.delivered_to[destination] = (
                    report.delivered_to.get(destination, 0) + 1
                )
        if QUERY_LOOPS in job.queries:
            for path in result.loops():
                report.loops.append(
                    {
                        "detected_at": str(path.last_port) if path.last_port else "?",
                        "reason": path.stop_reason,
                        "trace": list(path.ports_visited),
                    }
                )
            # Canonical order, not discovery order: loop findings must be
            # comparable across symmetric jobs whose Fork children enumerate
            # in different (renamed) orders.
            report.loops.sort(key=_loop_sort_key)
        if QUERY_INVARIANTS in job.queries:
            for path in result.paths:
                if path.status == PathStatus.DELIVERED:
                    continue
                reason = path.stop_reason
                report.drop_reasons[reason] = report.drop_reasons.get(reason, 0) + 1
            report.invariants = _check_invariants(result, job, solver)
        if job.record_examples:
            for path in result.delivered():
                destination = str(path.last_port)
                report.delivered_examples.setdefault(
                    destination, list(path.ports_visited)
                )
        if job.visibility_fields:
            report.visibility = _check_visibility(result, job, solver)
        if job.witness_fields:
            report.witnesses = _collect_witnesses(result, job, solver)
    except Exception as exc:
        report.error = f"{type(exc).__name__}: {exc}"
    return report


# ---------------------------------------------------------------------------
# Job-level symmetry reduction
# ---------------------------------------------------------------------------
#
# Many campaign jobs are literal renamings of each other (the 16 stanford
# zones).  The campaign encodes each job's (network, injection port, config)
# as an entity graph (repro.network.view), partitions jobs into equivalence
# classes by canonical fingerprint, executes one representative per class and
# *instantiates* the member reports by applying the recorded bijection to
# every picklable artifact.  The standing invariant applies: symmetry on/off
# changes which tier answers, never the answer — anything the renaming
# machinery cannot prove falls back to direct execution, and
# ``symmetry_audit`` re-executes one random member per class to assert the
# instantiated report is bit-identical to a direct run.


class SymmetryAuditError(RuntimeError):
    """An instantiated report differs from direct execution — the symmetry
    encoding is unsound for this network and must be fixed, not tolerated."""


def _loop_sort_key(loop: Mapping[str, object]) -> Tuple:
    return (
        str(loop.get("detected_at", "")),
        str(loop.get("reason", "")),
        tuple(str(port) for port in loop.get("trace", ())),
    )


def _job_config_digest(job: CampaignJob) -> str:
    """Digest of everything behaviour-relevant in a job except its injection
    point: jobs may only share a symmetry class when their packet, fact
    channels and execution budgets agree exactly.  Cache/store wiring is
    deliberately absent — it changes which tier answers, never the answer."""
    return config_digest(
        (
            job.packet,
            job.field_values,
            job.queries,
            job.invariant_fields,
            job.visibility_fields,
            job.witness_fields,
            job.record_examples,
            job.max_hops,
            job.max_paths,
            job.strategy,
            job.use_incremental_solver,
        )
    )


def _map_keys(mapping: Mapping[str, object], renaming, map_value) -> Dict:
    mapped: Dict[str, object] = {}
    for key, value in mapping.items():
        new_key = renaming.map_text(str(key))
        if new_key in mapped:
            raise SymmetryUnsupported(f"renaming collides on key {new_key!r}")
        mapped[new_key] = map_value(value)
    return mapped


def _instantiate_report(
    rep: JobReport, member: CampaignJob, renaming, class_id: str
) -> JobReport:
    """A member's JobReport, derived from its class representative's run by
    renaming every port/element/message string.  Solver and timing counters
    are zeroed: no engine work happened for this job, and the aggregated
    stats must say so."""
    report = JobReport(
        element=member.element,
        port=member.port,
        packet=rep.packet,
        symmetry_class=class_id,
        symmetry_instantiated_from=rep.source_key,
    )
    report.status_counts = dict(rep.status_counts)
    report.truncated = rep.truncated
    report.delivered_to = _map_keys(rep.delivered_to, renaming, lambda v: v)
    report.loops = sorted(
        (
            {
                "detected_at": renaming.map_text(str(loop.get("detected_at", ""))),
                "reason": renaming.map_text(str(loop.get("reason", ""))),
                "trace": [
                    renaming.map_text(str(port)) for port in loop.get("trace", ())
                ],
            }
            for loop in rep.loops
        ),
        key=_loop_sort_key,
    )
    report.drop_reasons = _map_keys(
        rep.drop_reasons, renaming, lambda v: v
    )
    # Invariant/visibility *field names* are part of the job config (equal
    # across the class); only destination ports need renaming.
    report.invariants = {
        name: dict(cell) for name, cell in rep.invariants.items()
    }
    report.visibility = {
        name: _map_keys(row, renaming, dict)
        for name, row in rep.visibility.items()
    }
    report.witnesses = {
        name: _map_keys(row, renaming, list)
        for name, row in rep.witnesses.items()
    }
    report.delivered_examples = _map_keys(
        rep.delivered_examples,
        renaming,
        lambda trace: [renaming.map_text(str(port)) for port in trace],
    )
    return report


def semantic_projection(report: JobReport) -> Dict[str, object]:
    """The tier-independent content of a job report: what the answer *is*,
    stripped of who computed it (pids, timings, solver counters, cache
    entries, symmetry annotations).  Two reports with equal projections are
    interchangeable for every query aggregation — the equality
    ``--symmetry-audit`` and the fuzz suite assert."""
    return {
        "element": report.element,
        "port": report.port,
        "packet": report.packet,
        "status_counts": dict(sorted(report.status_counts.items())),
        "delivered_to": dict(sorted(report.delivered_to.items())),
        "loops": sorted(
            (
                str(loop.get("detected_at", "")),
                str(loop.get("reason", "")),
                tuple(str(port) for port in loop.get("trace", ())),
            )
            for loop in report.loops
        ),
        "drop_reasons": dict(sorted(report.drop_reasons.items())),
        "invariants": {
            name: dict(sorted(cell.items()))
            for name, cell in sorted(report.invariants.items())
        },
        "visibility": {
            name: {
                destination: dict(sorted(cell.items()))
                for destination, cell in sorted(row.items())
            }
            for name, row in sorted(report.visibility.items())
        },
        "witnesses": {
            name: {
                destination: list(values)
                for destination, values in sorted(row.items())
            }
            for name, row in sorted(report.witnesses.items())
        },
        "delivered_examples": {
            destination: list(trace)
            for destination, trace in sorted(report.delivered_examples.items())
        },
        "truncated": report.truncated,
        "error": report.error,
    }


@dataclass
class _SymmetryPlan:
    """One campaign's job partition: which jobs execute, which instantiate."""

    view: CampaignSymmetryView
    #: (element, port) -> canonical form, for every job that encoded.
    forms: Dict[Tuple[str, str], object]
    #: (representative job, member jobs, class fingerprint) per class with
    #: at least one member to skip.
    classes: List[Tuple[CampaignJob, List[CampaignJob], str]]
    #: Distinct equivalence classes over the whole job set (non-encodable
    #: jobs count as singletons) — what engine runs drop to.
    class_count: int
    #: Injection keys whose jobs are NOT executed (instantiated instead).
    member_keys: Dict[Tuple[str, str], Tuple[str, str]]


# ---------------------------------------------------------------------------
# Campaign result
# ---------------------------------------------------------------------------


@dataclass
class CampaignResult:
    """Aggregated outcome of a verification campaign."""

    source: str
    queries: Tuple[str, ...]
    jobs: List[JobReport] = field(default_factory=list)
    validation_problems: List[str] = field(default_factory=list)
    execution_mode: str = "in-process"
    workers: int = 1
    reachability: ReachabilityMatrix = field(default_factory=ReachabilityMatrix)
    loop_report: LoopReport = field(default_factory=LoopReport)
    invariant_report: InvariantReport = field(default_factory=InvariantReport)
    stats: CampaignStats = field(default_factory=CampaignStats)
    #: Canonical verdict-cache entries merged from every job — pass as
    #: ``warm_cache`` to a later campaign to start it warm.
    verdict_cache: Dict[str, str] = field(default_factory=dict)
    #: How delta verification partitioned this run (spliced/executed counts,
    #: touched files/elements, or a fallback reason); empty when no baseline
    #: was in play.
    delta_info: Dict[str, object] = field(default_factory=dict)
    #: This run packaged as the next run's delta baseline (directory
    #: sources only) — what ``--save-baseline`` writes and the store keeps.
    baseline_payload: Optional[Dict[str, object]] = field(
        default=None, repr=False
    )

    @classmethod
    def aggregate(
        cls,
        source: str,
        queries: Sequence[str],
        jobs: Iterable[JobReport],
        *,
        validation_problems: Sequence[str] = (),
        execution_mode: str = "in-process",
        workers: int = 1,
        wall_clock_seconds: float = 0.0,
    ) -> "CampaignResult":
        result = cls(
            source=source,
            queries=tuple(queries),
            validation_problems=list(validation_problems),
            execution_mode=execution_mode,
            workers=workers,
        )
        # Sort by injection point so aggregation order (and therefore every
        # fingerprint) is independent of completion order.
        for job in sorted(jobs, key=lambda j: (j.element, j.port)):
            result.jobs.append(job)
            result.stats.absorb(
                paths=job.path_count,
                elapsed_seconds=job.elapsed_seconds,
                solver_calls=job.solver_calls,
                solver_time_seconds=job.solver_time_seconds,
                solver_fast_paths=job.solver_fast_paths,
                solver_cache_hits=job.solver_cache_hits,
                solver_cache_misses=job.solver_cache_misses,
                truncated=job.truncated,
                failed=job.error is not None,
                solver_shared_cache_hits=job.solver_shared_cache_hits,
                solver_cache_merged=job.solver_cache_merged,
                solver_shared_round_trips=job.solver_shared_round_trips,
                solver_degraded_operations=job.solver_degraded_operations,
                solver_shared_publish_batches=job.solver_shared_publish_batches,
                solver_shared_publish_entries=job.solver_shared_publish_entries,
            )
            # Merge the job's fresh verdicts into the campaign-level cache.
            # Jobs are absorbed in sorted injection order and resolve_verdict
            # lets definite verdicts supersede "unknown"s, so the merged map
            # is order-independent; a definite-vs-definite conflict would
            # mean canonicalization is unsound and must fail loudly.
            _merge_verdict_entries(
                result.verdict_cache,
                job.verdict_cache_entries,
                "jobs disagree",
            )
            if job.error is not None:
                continue
            source_key = job.source_key
            if QUERY_REACHABILITY in result.queries:
                result.reachability.add_source(source_key)
                for destination, count in job.delivered_to.items():
                    result.reachability.record(source_key, destination, count)
            if QUERY_LOOPS in result.queries:
                result.loop_report.add_source(source_key)
                for loop in job.loops:
                    result.loop_report.record(
                        LoopFinding(
                            source=source_key,
                            detected_at=str(loop.get("detected_at", "?")),
                            reason=str(loop.get("reason", "")),
                            trace=tuple(loop.get("trace", ())),
                        )
                    )
            if QUERY_INVARIANTS in result.queries:
                result.invariant_report.record_drops(source_key, job.drop_reasons)
                for field_name, cell in job.invariants.items():
                    result.invariant_report.record_field(
                        source_key,
                        field_name,
                        checked=cell.get("checked", 0),
                        held=cell.get("held", 0),
                        skipped=cell.get("skipped", 0),
                    )
        result.stats.wall_clock_seconds = wall_clock_seconds
        result.stats.verdict_cache_entries = len(result.verdict_cache)
        return result

    def absorb_warm_entries(self, entries: Mapping[str, str]) -> None:
        """Fold a campaign's warm-start entries into the result's verdict
        cache, so chained campaigns (cold -> warm -> warmer) never lose
        verdicts that happened not to be re-derived this run."""
        _merge_verdict_entries(
            self.verdict_cache, entries.items(), "warm entry conflicts"
        )
        self.stats.verdict_cache_entries = len(self.verdict_cache)

    @property
    def job_errors(self) -> List[Tuple[str, str]]:
        return [(job.source_key, job.error) for job in self.jobs if job.error]

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "network": self.source,
            "queries": list(self.queries),
            "workers": self.workers,
            "execution_mode": self.execution_mode,
            "validation_problems": list(self.validation_problems),
            "stats": self.stats.to_dict(),
            "verdict_cache": {"entries": len(self.verdict_cache)},
            "jobs": [job.to_dict() for job in self.jobs],
        }
        if self.delta_info:
            payload["delta"] = dict(self.delta_info)
        if QUERY_REACHABILITY in self.queries:
            payload["reachability"] = self.reachability.to_dict()
        if QUERY_LOOPS in self.queries:
            payload["loops"] = self.loop_report.to_dict()
        if QUERY_INVARIANTS in self.queries:
            payload["invariants"] = self.invariant_report.to_dict()
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------


class VerificationCampaign:
    """Fan a network out across many injection ports and aggregate queries.

    >>> campaign = VerificationCampaign(network)        # doctest: +SKIP
    ... campaign.add_all_free_input_ports()
    ... result = campaign.run(workers=4)
    ... result.reachability.pairs()
    """

    #: Campaigns smaller than this run in-process even when workers > 1 —
    #: forking costs more than the jobs themselves.
    MIN_JOBS_FOR_POOL = 2

    def __init__(
        self,
        source: Union[NetworkSource, Network, str],
        *,
        packet: str = "tcp",
        field_values: Optional[Dict[str, int]] = None,
        queries: Sequence[str] = CAMPAIGN_QUERIES,
        invariant_fields: Sequence[str] = DEFAULT_INVARIANT_FIELDS,
        visibility_fields: Sequence[str] = (),
        witness_fields: Sequence[Tuple[str, int]] = (),
        record_examples: bool = False,
        max_hops: int = 128,
        max_paths: int = 1_000_000,
        strategy: str = "dfs",
        use_incremental_solver: bool = True,
        shared_cache: bool = True,
        warm_cache: Optional[Mapping[str, str]] = None,
        store: Optional[object] = None,
        cache_shards: int = DEFAULT_SHARD_COUNT,
        publish_batch: int = DEFAULT_PUBLISH_BATCH,
        validation: Optional[Sequence[str]] = None,
        symmetry: bool = True,
        symmetry_audit: bool = False,
        symmetry_audit_seed: int = 0,
        delta: bool = True,
        baseline: Optional[object] = None,
    ) -> None:
        if isinstance(source, Network):
            source = NetworkSource.from_network(source)
        elif isinstance(source, str):
            source = NetworkSource.from_directory(source)
        self.source = source
        unknown = set(queries) - set(CAMPAIGN_QUERIES)
        if unknown:
            known = ", ".join(CAMPAIGN_QUERIES)
            raise ValueError(f"unknown queries {sorted(unknown)}; known: {known}")
        # ``shared_cache`` switches the whole cross-job verdict-cache stack:
        # the per-worker persistent cache, the process-shared tier used on
        # pools, *and* the persistent store.  ``store`` (a
        # :class:`repro.store.VerificationStore`) is the durable warm-start
        # path: workers merge its shards once per store state and the
        # campaign publishes its fresh verdicts back after aggregation.
        # ``warm_cache`` (a previous CampaignResult's ``verdict_cache``) is
        # the deprecated in-memory predecessor: it still works, but it ships
        # every entry through job pickles — except when ``shared_cache`` is
        # off: jobs must then stay a truly isolated baseline, so warm
        # entries are only folded into the result.
        if warm_cache is not None:
            warnings.warn(
                "VerificationCampaign(warm_cache=...) is deprecated; persist "
                "verdicts across campaigns with a VerificationStore instead "
                "(store=VerificationStore(store_dir), or the CLI --store-dir "
                "flag): workers open the store's disk shards once per "
                "process instead of re-importing pickled entries per job",
                DeprecationWarning,
                stacklevel=2,
            )
        self._store = store
        self._cache_shards = cache_shards
        self._publish_batch = publish_batch
        self._shared_cache = shared_cache
        # Job-level symmetry reduction: execute one engine job per
        # equivalence class of (network, injection port, config) up to
        # renaming, instantiate the rest.  ``symmetry_audit`` re-executes
        # one random member per class (seeded, so CI runs are pinned) and
        # raises SymmetryAuditError unless the instantiated report is
        # bit-identical to the direct run.
        self._symmetry = symmetry
        self._symmetry_audit = symmetry_audit
        self._symmetry_audit_seed = symmetry_audit_seed
        # Delta verification: splice a previous run's answers for injection
        # ports the directory diff provably did not touch, and execute only
        # the rest.  ``baseline`` is an explicit CampaignBaseline (or its
        # payload dict, e.g. a ``--save-baseline`` file); with ``delta``
        # left on, directory campaigns also auto-detect a baseline from the
        # store.  Like every other tier this changes who answers, never the
        # answer — anything unprovable falls back to executing the job.
        self._delta = delta
        if baseline is not None and not isinstance(baseline, CampaignBaseline):
            baseline = CampaignBaseline.from_payload(baseline)
        self._baseline: Optional[CampaignBaseline] = baseline
        self._baseline_origin = "file"
        self._warm_cache = dict(warm_cache or {})
        warm_entries = tuple(sorted(self._warm_cache.items()))
        warm_token = ""
        if warm_entries and shared_cache:
            warm_token = hashlib.sha256(repr(warm_entries).encode()).hexdigest()
        self._job_template = CampaignJob(
            source=source,
            element="",
            port="",
            packet=packet,
            field_values=tuple(sorted((field_values or {}).items())),
            queries=tuple(queries),
            invariant_fields=tuple(invariant_fields),
            visibility_fields=tuple(visibility_fields),
            witness_fields=tuple(witness_fields),
            record_examples=record_examples,
            max_hops=max_hops,
            max_paths=max_paths,
            strategy=strategy,
            use_incremental_solver=use_incremental_solver,
            use_verdict_cache=shared_cache,
            warm_cache_entries=warm_entries if shared_cache else (),
            warm_cache_token=warm_token,
        )
        self._injections: List[Tuple[str, str]] = []
        self._injection_facts: Dict[Tuple[str, str], PortFacts] = {}
        self._network: Optional[Network] = None
        self._registered_injections: Optional[List[Tuple[str, str]]] = None
        # ``validation`` hoists Network.validate() out of the campaign: a
        # NetworkModel validates its network exactly once and hands the
        # findings to every campaign (and the CLI) it spawns, instead of each
        # construction site silently re-validating — and possibly re-building
        # — the same network.
        self._validation: Optional[List[str]] = (
            list(validation) if validation is not None else None
        )

    # -- injection points ---------------------------------------------------------

    def add_injection(
        self,
        element: str,
        port: str = "in0",
        facts: Optional[PortFacts] = None,
    ) -> "VerificationCampaign":
        """Add one injection point.  ``facts`` narrows the fact channels the
        port's job collects to a subset of the campaign's globals (the API
        planner's per-port narrowing); omitted, the job collects the full
        template."""
        if facts is not None:
            unknown = set(facts.queries) - set(self._job_template.queries)
            if unknown:
                raise ValueError(
                    f"per-port facts ask for {sorted(unknown)} which the "
                    f"campaign does not aggregate {self._job_template.queries}"
                )
            self._injection_facts[(element, port)] = facts
        self._injections.append((element, port))
        return self

    def add_injections(
        self, injections: Iterable[Tuple[str, str]]
    ) -> "VerificationCampaign":
        for element, port in injections:
            self.add_injection(element, port)
        return self

    def add_all_free_input_ports(self) -> "VerificationCampaign":
        """Inject at every input port that no link feeds (network edges)."""
        return self.add_injections(free_input_ports(self.network()))

    def add_default_injections(self) -> "VerificationCampaign":
        """The workload's registered injection ports, or every free input
        port when the source does not define any.  Fully wired networks
        (rings) have no free edges; those fall back to every input port."""
        network = self.network()  # one build populates _registered_injections
        return self.add_injections(
            default_injection_ports(network, self._registered_injections)
        )

    @property
    def injections(self) -> List[Tuple[str, str]]:
        return list(self._injections)

    # -- execution ------------------------------------------------------------------

    def network(self) -> Network:
        """The campaign's network, built once (and cached) in this process."""
        if self._network is None:
            self._network, self._registered_injections = self.source.build_full()
            # Seed the in-process runtime so sequential execution reuses
            # this build instead of re-running the recipe per job.
            _seed_runtime(self.source, self._network)
        return self._network

    def validate(self) -> List[str]:
        """Structural problems of the network, computed once per campaign."""
        if self._validation is None:
            self._validation = self.network().validate()
        return self._validation

    def jobs(self) -> List[CampaignJob]:
        if not self._injections:
            self.add_default_injections()
        template = self._job_template
        if self._store is not None and self._shared_cache:
            # Jobs reference the store by directory + content token; each
            # worker process merges the disk shards locally, exactly once
            # per store state (see execute_job).
            template = replace(
                template,
                store_dir=self._store.directory,
                store_token=self._store.content_token(),
                store_shards=self._store.shard_count,
            )
        jobs = []
        for element, port in sorted(set(self._injections)):
            job = replace(template, element=element, port=port)
            facts = self._injection_facts.get((element, port))
            if facts is not None:
                job = replace(
                    job,
                    queries=tuple(facts.queries),
                    invariant_fields=tuple(facts.invariant_fields),
                    visibility_fields=tuple(facts.visibility_fields),
                    witness_fields=tuple(facts.witness_fields),
                    record_examples=facts.record_examples,
                )
            jobs.append(job)
        return jobs

    # -- symmetry ------------------------------------------------------------------

    def _symmetry_partition(
        self, jobs: List[CampaignJob]
    ) -> Optional[_SymmetryPlan]:
        """Partition the job set into renaming-equivalence classes, or
        ``None`` when symmetry is off / cannot help / cannot be proven.

        Jobs that record discovery-order-sensitive artifacts (example
        traces, capped witness samples) never merge: a renamed zone
        enumerates its Fork children in a different order, so "the first
        delivered path" is not renaming-stable.  Order-independent artifacts
        (counts, loop sets, invariant verdicts, visibility tallies) are."""
        if not self._symmetry or len(jobs) < 2:
            return None
        eligible = [
            job
            for job in jobs
            if not job.record_examples and not job.witness_fields
        ]
        if len(eligible) < 2:
            return None
        try:
            network = self.network()
            pinned: set = set()
            per_program: Dict[Tuple, set] = {}
            for job in eligible:
                key = (job.packet, job.field_values)
                if key not in per_program:
                    per_program[key] = collect_constants(_packet_program(job))
                pinned.update(per_program[key])
            view = CampaignSymmetryView(network, pinned)
        except SymmetryUnsupported:
            return None
        except (ValueError, KeyError):
            return None  # unknown template etc.: execute_job will report it
        forms: Dict[Tuple[str, str], object] = {}
        grouped: Dict[str, List[CampaignJob]] = {}
        for job in eligible:
            try:
                form = view.job_form(
                    job.element, job.port, _job_config_digest(job)
                )
            except SymmetryUnsupported:
                continue
            forms[(job.element, job.port)] = form
            grouped.setdefault(form.fingerprint, []).append(job)
        classes = []
        for fingerprint in sorted(grouped):
            members = grouped[fingerprint]  # already in (element, port) order
            if len(members) > 1:
                classes.append((members[0], members[1:], fingerprint))
        if not classes:
            return None
        member_keys = {
            (member.element, member.port): (rep.element, rep.port)
            for rep, members, _ in classes
            for member in members
        }
        return _SymmetryPlan(
            view=view,
            forms=forms,
            classes=classes,
            class_count=len(grouped) + (len(jobs) - len(forms)),
            member_keys=member_keys,
        )

    def _audit_choices(self, plan: _SymmetryPlan) -> Dict[Tuple[str, str], int]:
        """Pre-draw the audited member index for every class, in
        ``plan.classes`` order.  Drawing everything upfront keeps the seeded
        choice independent of the order in which representatives *complete*
        (streamed pool execution reports them as they land), so audit runs
        stay reproducible under ``--symmetry-audit-seed``."""
        if not self._symmetry_audit:
            return {}
        rng = random.Random(self._symmetry_audit_seed)
        return {
            (rep.element, rep.port): rng.randrange(len(members))
            for rep, members, _ in plan.classes
        }

    def _expand_representative(
        self,
        plan: _SymmetryPlan,
        rep_job: CampaignJob,
        members: List[CampaignJob],
        fingerprint: str,
        rep_report: JobReport,
        audit_index: int,
    ) -> Tuple[List[JobReport], int, int]:
        """Derive every skipped member's report from its just-completed
        class representative.  Representatives that errored or truncated —
        and members whose renaming cannot be built — fall back to direct
        execution: symmetry must never degrade an answer.

        Returns ``(member_reports, jobs_skipped, audit_runs)``: audit
        re-executions are real engine runs whose reports are discarded
        after comparison, so they are counted separately instead of
        silently skewing the classes-plus-skipped accounting."""
        class_id = fingerprint[:16]
        if rep_report.error is not None or rep_report.truncated:
            return [execute_job(member) for member in members], 0, 0
        rep_report.symmetry_class = class_id
        rep_form = plan.forms[(rep_job.element, rep_job.port)]
        out: List[JobReport] = []
        skipped = 0
        audit_runs = 0
        for index, member in enumerate(members):
            member_form = plan.forms[(member.element, member.port)]
            try:
                renaming = build_renaming(plan.view, rep_form, member_form)
                instantiated = _instantiate_report(
                    rep_report, member, renaming, class_id
                )
            except SymmetryUnsupported:
                out.append(execute_job(member))
                continue
            skipped += 1
            if index == audit_index:
                direct = execute_job(member)
                audit_runs += 1
                if semantic_projection(direct) != semantic_projection(
                    instantiated
                ):
                    raise SymmetryAuditError(
                        f"symmetry audit failed for "
                        f"{member.element}:{member.port} (class "
                        f"{class_id}, representative "
                        f"{rep_job.element}:{rep_job.port}): the "
                        "instantiated report differs from direct "
                        "execution — the symmetry encoding is unsound "
                        "for this network"
                    )
            out.append(instantiated)
        return out, skipped, audit_runs

    # -- delta ---------------------------------------------------------------------

    def _delta_partition(
        self, jobs: List[CampaignJob]
    ) -> Tuple[List[CampaignJob], List[JobReport], Dict[str, object]]:
        """Split the job set against the baseline: ``(jobs to execute,
        spliced reports, delta info)``.

        A job is spliced — answered from the baseline without touching the
        engine — only when every link in the proof holds: the topology is
        unchanged, the job's element cannot reach any touched element along
        the link graph, and the baseline holds a report for this exact port
        under this exact job config.  Any gap puts the job back on the
        execute list; delta never degrades an answer."""
        baseline = self._baseline
        origin = self._baseline_origin
        if (
            baseline is None
            and self._delta
            and self._store is not None
            and self._shared_cache
            and self.source.kind == "directory"
            and self.source.directory
        ):
            baseline = CampaignBaseline.from_payload(
                self._store.get_baseline(self.source.directory)
            )
            origin = "store"
        if baseline is None:
            return jobs, [], {}
        manifest = ElementManifest.of_network(self.network())
        if manifest is None:
            return (
                jobs,
                [],
                {"spliced": 0, "executed": len(jobs), "reason": "no build manifest"},
            )
        diff = diff_manifests(baseline.manifest, manifest)
        if not diff.compatible:
            return (
                jobs,
                [],
                {"spliced": 0, "executed": len(jobs), "reason": diff.reason},
            )
        affected = affected_injections(
            self.network(),
            [(job.element, job.port) for job in jobs],
            diff.touched_elements,
        )
        exec_jobs: List[CampaignJob] = []
        spliced: List[JobReport] = []
        for job in jobs:
            payload = None
            if (job.element, job.port) not in affected:
                payload = baseline.report_for(
                    port_key(job.element, job.port), _job_config_digest(job)
                )
            if payload is None:
                exec_jobs.append(job)
            else:
                spliced.append(report_from_payload(payload, spliced_from=origin))
        info: Dict[str, object] = {
            "spliced": len(spliced),
            "executed": len(exec_jobs),
            "executed_ports": sorted(
                port_key(job.element, job.port) for job in exec_jobs
            ),
            "baseline": origin,
            "touched_files": list(diff.touched_files),
            "touched_elements": list(diff.touched_elements),
        }
        return exec_jobs, spliced, info

    # -- execution ------------------------------------------------------------------

    def _execute_jobs(
        self,
        exec_jobs: List[CampaignJob],
        workers: int,
        pool: Optional[ProcessPoolExecutor],
        finish: Callable[[JobReport], None],
    ) -> str:
        """Run every job, calling ``finish`` as each report completes.
        Returns the execution mode string for the result.

        Failure taxonomy (the old ``except (OSError, RuntimeError)`` around
        ``pool.map`` conflated all three and silently re-ran everything
        sequentially, masking genuine job errors and doubling work):

        * pool *startup* failure — no usable multiprocessing in this
          environment (restricted sandbox, missing semaphores).  Detected
          by a probe submit before any job runs; degrade to in-process.
        * pool *breakage* mid-run — a worker died (OOM kill, segfault).
          ``BrokenProcessPool``; completed reports are kept and only the
          missing jobs re-execute in-process, with a warning.
        * *job-level* exception — ``execute_job`` already folds expected
          failures into ``report.error``, so anything escaping it is an
          infrastructure or invariant bug the caller must see: propagate.
        """
        if not exec_jobs:
            return "in-process"
        if not (
            workers > 1
            and self.source.picklable
            and len(exec_jobs) >= self.MIN_JOBS_FOR_POOL
        ):
            # self.network() during planning already seeded the runtime
            # cache, so the sequential path executes against this
            # campaign's own build.
            for job in exec_jobs:
                finish(execute_job(job))
            return "in-process"
        import multiprocessing

        manager = None
        own_pool = None
        active_pool = None
        try:
            pool_jobs = exec_jobs
            if get_tracer().enabled:
                # Ask workers to record spans locally and ship them back in
                # report.spans; the driver re-parents them (see finish()).
                pool_jobs = [replace(job, trace=True) for job in pool_jobs]
            if self._shared_cache:
                # Process-shared verdict tier: workers publish full-solve
                # verdicts as they land, so symmetric jobs on *different*
                # workers stop re-solving each other's constraint sets.
                # The fingerprint space is prefix-sharded across
                # ``cache_shards`` Manager dicts and publishes are
                # batched per worker (repro.store.sharding), so misses
                # contend shard-wise instead of on one proxy lock.
                # Manager failure only loses the shared tier, not the run.
                try:
                    manager = multiprocessing.Manager()
                    tier = ShardedTier(
                        [manager.dict() for _ in range(self._cache_shards)],
                        batch_size=self._publish_batch,
                    )
                    if self._warm_cache:
                        tier.seed(self._warm_cache)
                    pool_jobs = [
                        replace(job, shared_cache=tier) for job in pool_jobs
                    ]
                except (OSError, RuntimeError) as exc:
                    manager = None
                    _LOG.warning(
                        "multiprocessing.Manager unavailable, running "
                        "without the process-shared verdict tier: %s", exc,
                    )
            try:
                if pool is not None:
                    active_pool = pool
                else:
                    own_pool = ProcessPoolExecutor(
                        max_workers=min(workers, len(exec_jobs))
                    )
                    active_pool = own_pool
                # Startup probe: force a worker to spawn before any job is
                # submitted, so this except provably means "no usable
                # multiprocessing" and never swallows a job failure.
                active_pool.submit(os.getpid).result()
            except (OSError, RuntimeError) as exc:
                _LOG.warning(
                    "process pool unavailable (%s); executing %d job(s) "
                    "in-process", exc, len(exec_jobs),
                )
                active_pool = None
                if own_pool is not None:
                    own_pool.shutdown(wait=False)
                    own_pool = None
            if active_pool is None:
                for job in exec_jobs:
                    finish(execute_job(job))
                return "in-process"
            done_keys = set()
            futures = {}
            try:
                for pool_job, job in zip(pool_jobs, exec_jobs):
                    futures[active_pool.submit(execute_job, pool_job)] = job
                for future in as_completed(futures):
                    report = future.result()
                    done_keys.add((report.element, report.port))
                    finish(report)
                return "process-pool"
            except BrokenProcessPool:
                warnings.warn(
                    "a campaign worker process died mid-run; completed "
                    f"reports are kept and the remaining "
                    f"{len(exec_jobs) - len(done_keys)} job(s) re-execute "
                    "in-process",
                    RuntimeWarning,
                    stacklevel=3,
                )
                for job in exec_jobs:
                    if (job.element, job.port) in done_keys:
                        continue
                    finish(execute_job(job))
                return "process-pool-recovered"
        finally:
            if own_pool is not None:
                own_pool.shutdown()
            if manager is not None:
                manager.shutdown()

    def run(
        self,
        workers: int = 1,
        on_report: Optional[Callable[[JobReport], None]] = None,
        pool: Optional[ProcessPoolExecutor] = None,
    ) -> CampaignResult:
        """Execute the campaign.

        ``on_report`` streams every final :class:`JobReport` — spliced from
        a delta baseline, executed, or symmetry-instantiated — to the
        caller the moment it is known, before the rest of the campaign
        finishes (the resident service answers queries from these before
        the slowest job lands).  ``pool`` lends an already-running
        :class:`ProcessPoolExecutor` (service-owned, reused across
        requests); a borrowed pool is never shut down here.  Either way the
        aggregated result is bit-identical to the default barrier run.
        """
        tracer = get_tracer()
        with tracer.span(
            "campaign", source=self.source.describe(), workers=workers
        ) as campaign_span:
            return self._run(workers, on_report, pool, tracer, campaign_span)

    def _run(
        self,
        workers: int,
        on_report: Optional[Callable[[JobReport], None]],
        pool: Optional[ProcessPoolExecutor],
        tracer,
        campaign_span,
    ) -> CampaignResult:
        started = time.perf_counter()
        validation_problems = self.validate()
        store_degraded_before = (
            self._store.degraded_operations if self._store is not None else 0
        )
        jobs = self.jobs()
        delta_jobs, spliced_reports, delta_info = self._delta_partition(jobs)
        plan = self._symmetry_partition(delta_jobs)
        exec_jobs = (
            delta_jobs
            if plan is None
            else [
                job
                for job in delta_jobs
                if (job.element, job.port) not in plan.member_keys
            ]
        )
        rep_classes: Dict[Tuple[str, str], Tuple] = {}
        audit_choices: Dict[Tuple[str, str], int] = {}
        if plan is not None:
            rep_classes = {
                (rep.element, rep.port): (rep, members, fingerprint)
                for rep, members, fingerprint in plan.classes
            }
            audit_choices = self._audit_choices(plan)
        final_reports: List[JobReport] = []
        jobs_skipped = 0
        audit_runs = 0

        def finish(report: JobReport) -> None:
            """Account one executed report — and, when it represents a
            symmetry class, every member report derived from it — the
            moment it completes."""
            nonlocal jobs_skipped, audit_runs
            if report.spans:
                # Worker-recorded spans: remap their ids into this
                # process's trace and hang their roots off the campaign
                # span.  Telemetry only — the report's answer is final
                # before this line and untouched after it.
                tracer.absorb(report.spans, parent_id=campaign_span.span_id)
            record_job_report(report)
            final_reports.append(report)
            if on_report is not None:
                on_report(report)
            entry = rep_classes.get((report.element, report.port))
            if entry is None:
                return
            rep_job, members, fingerprint = entry
            with tracer.span(
                "symmetry.class",
                representative=report.source_key,
                members=len(members),
            ):
                derived, skipped, audits = self._expand_representative(
                    plan,
                    rep_job,
                    members,
                    fingerprint,
                    report,
                    audit_choices.get((rep_job.element, rep_job.port), -1),
                )
            jobs_skipped += skipped
            audit_runs += audits
            for member_report in derived:
                record_job_report(member_report)
                final_reports.append(member_report)
                if on_report is not None:
                    on_report(member_report)

        # Spliced reports are already final: stream them first, they cost
        # nothing (aggregation is order-independent, so this cannot move
        # any answer).
        if spliced_reports:
            with tracer.span("delta.splice", count=len(spliced_reports)):
                for report in spliced_reports:
                    record_job_report(report)
                    final_reports.append(report)
                    if on_report is not None:
                        on_report(report)
        mode = self._execute_jobs(exec_jobs, workers, pool, finish)
        result = CampaignResult.aggregate(
            self.source.describe(),
            self._job_template.queries,
            final_reports,
            validation_problems=validation_problems,
            execution_mode=mode,
            workers=workers,
            wall_clock_seconds=time.perf_counter() - started,
        )
        result.stats.symmetry_classes = (
            plan.class_count if plan is not None else 0
        )
        result.stats.jobs_skipped_by_symmetry = jobs_skipped
        result.stats.symmetry_audit_runs = audit_runs
        result.stats.jobs_spliced_by_delta = len(spliced_reports)
        if delta_info:
            result.delta_info = dict(delta_info)
        if self._warm_cache:
            result.absorb_warm_entries(self._warm_cache)
        if self._store is not None and self._shared_cache:
            # Persist every fresh verdict this campaign derived.  A
            # definite-vs-definite conflict with the store proves either
            # unsound canonicalization or a corrupted segment that slipped
            # past the integrity checks — but the finished result in hand
            # was computed from live solves and is correct regardless, so
            # the store's never-crash-a-campaign contract applies: warn
            # loudly and skip the publish instead of discarding the run.
            result.stats.store_entries_loaded = self._store.verdict_count()
            try:
                publish_started = time.perf_counter()
                with tracer.span(
                    "store.publish", entries=len(result.verdict_cache)
                ):
                    result.stats.store_entries_published = self._store.publish(
                        result.verdict_cache
                    )
                from repro.obs import get_registry

                get_registry().histogram(
                    "repro_store_publish_seconds",
                    "Wall-clock seconds per campaign store publish.",
                ).observe(time.perf_counter() - publish_started)
            except CacheConflictError as exc:
                warnings.warn(
                    f"verdict store at {self._store.directory} conflicts "
                    f"with this campaign's live solves ({exc}); nothing was "
                    "published — the store is likely corrupted (inspect / "
                    "compact it), or canonicalization is unsound",
                    RuntimeWarning,
                    stacklevel=2,
                )
                result.stats.store_entries_published = 0
        if self.source.kind == "directory" and self.source.directory:
            # Record this run as the directory's delta baseline: the build
            # manifest plus every non-errored report (executed, instantiated
            # or itself spliced — all carry the same semantic content a
            # fresh run would).  Attached to the result for --save-baseline;
            # persisted in the store so the next campaign auto-detects it.
            manifest = ElementManifest.of_network(self.network())
            if manifest is not None:
                configs = {
                    port_key(job.element, job.port): _job_config_digest(job)
                    for job in jobs
                }
                result.baseline_payload = baseline_payload(
                    manifest,
                    configs,
                    result.jobs,
                    source=os.path.abspath(self.source.directory),
                )
                if (
                    self._delta
                    and self._store is not None
                    and self._shared_cache
                ):
                    self._store.put_baseline(
                        self.source.directory, result.baseline_payload
                    )
        if self._store is not None:
            # Driver-side store failures (failed quarantine moves, baseline
            # writes, ...) during this run join the job-side tier failures
            # already absorbed from the reports.
            result.stats.degraded_operations += (
                self._store.degraded_operations - store_degraded_before
            )
        # One registry publication per finished campaign: the roll-up
        # counters that have no per-report home (symmetry skips, store
        # traffic, degraded operations) land in repro.obs.metrics here.
        record_campaign_stats(result.stats)
        return result
