"""First-class network-wide query objects for verification campaigns.

A single :class:`~repro.core.engine.SymbolicExecutor` run answers questions
about *one* injection port.  The paper's headline results are network-wide —
"the reachability matrix of the Stanford backbone", "the network is loop
free", "field X is invariant everywhere" — so campaigns aggregate many runs
into the query objects defined here:

* :class:`ReachabilityMatrix` — all-pairs reachability: which terminal ports
  each injection port can deliver packets to, with path counts;
* :class:`LoopReport` — every loop (or exhausted hop budget) found anywhere,
  keyed by injection port;
* :class:`InvariantReport` — per-field invariance verdicts plus drop-policy
  coverage (every non-delivered path accounted for by an explicit reason).

All objects are plain-data: built from the picklable per-job reports the
campaign workers return, serialisable with ``to_dict``, and comparable via
``fingerprint`` (used to assert parallel and sequential campaigns agree).

Adding a new query type
-----------------------

1. Collect the raw (picklable!) facts in ``campaign.JobReport`` — they must
   cross the process boundary, so no solver terms or execution states;
2. add a result class here with ``from_jobs`` / ``to_dict`` / ``fingerprint``;
3. register its name in :data:`repro.core.campaign.CAMPAIGN_QUERIES` so the
   CLI accepts ``--query <name>`` and ``CampaignResult`` aggregates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def port_key(element: str, port: str) -> str:
    """Canonical ``element:port`` key used for matrix rows and columns."""
    return f"{element}:{port}"


# ---------------------------------------------------------------------------
# Reachability matrix
# ---------------------------------------------------------------------------


class ReachabilityMatrix:
    """All-pairs reachability: injection port -> terminal port -> path count.

    Rows are injection points (``element:port`` the campaign injected at),
    columns are terminal output ports where at least one packet was
    delivered.  Cell values count the delivered paths, so the matrix doubles
    as a crude multiplicity report (ECMP-style duplication shows up as >1).
    """

    def __init__(self) -> None:
        self._cells: Dict[str, Dict[str, int]] = {}

    # -- construction -----------------------------------------------------------

    def add_source(self, source: str) -> None:
        """Register an injection point even if nothing was reachable from it
        (an all-zero row is information too)."""
        self._cells.setdefault(source, {})

    def record(self, source: str, destination: str, paths: int = 1) -> None:
        row = self._cells.setdefault(source, {})
        row[destination] = row.get(destination, 0) + paths

    # -- queries ----------------------------------------------------------------

    def reachable(self, source: str, destination: str) -> bool:
        return self._cells.get(source, {}).get(destination, 0) > 0

    def path_count(self, source: str, destination: str) -> int:
        return self._cells.get(source, {}).get(destination, 0)

    @property
    def sources(self) -> List[str]:
        return sorted(self._cells)

    @property
    def destinations(self) -> List[str]:
        seen = set()
        for row in self._cells.values():
            seen.update(row)
        return sorted(seen)

    def destinations_from(self, source: str) -> List[str]:
        return sorted(self._cells.get(source, {}))

    def sources_reaching(self, destination: str) -> List[str]:
        return sorted(
            src for src, row in self._cells.items() if row.get(destination, 0) > 0
        )

    def pair_count(self) -> int:
        """Number of reachable (source, destination) pairs."""
        return sum(1 for _, _, count in self.pairs() if count > 0)

    def pairs(self) -> List[Tuple[str, str, int]]:
        """Sorted ``(source, destination, paths)`` triples — the canonical
        order-independent view of the matrix."""
        return sorted(
            (source, destination, count)
            for source, row in self._cells.items()
            for destination, count in row.items()
        )

    # -- reporting --------------------------------------------------------------

    def fingerprint(self) -> Tuple[Tuple[str, str, int], ...]:
        """Hashable canonical form; identical for any execution order."""
        return tuple(self.pairs())

    def to_dict(self) -> Dict[str, object]:
        return {
            "sources": self.sources,
            "destinations": self.destinations,
            "pairs": [
                {"from": source, "to": destination, "paths": count}
                for source, destination, count in self.pairs()
            ],
            "reachable_pairs": self.pair_count(),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReachabilityMatrix):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __repr__(self) -> str:
        return (
            f"ReachabilityMatrix(sources={len(self._cells)}, "
            f"pairs={self.pair_count()})"
        )


# ---------------------------------------------------------------------------
# Loop report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoopFinding:
    """One looping path: where it was injected, where the loop closed and the
    port trace that demonstrates it."""

    source: str
    detected_at: str
    reason: str
    trace: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "detected_at": self.detected_at,
            "reason": self.reason,
            "trace": list(self.trace),
        }


class LoopReport:
    """Network-wide loop-freedom verdict: every loop found by any job."""

    def __init__(self) -> None:
        self._findings: List[LoopFinding] = []
        self._sources: List[str] = []

    def add_source(self, source: str) -> None:
        self._sources.append(source)

    def record(self, finding: LoopFinding) -> None:
        self._findings.append(finding)

    @property
    def loop_free(self) -> bool:
        return not self._findings

    @property
    def findings(self) -> List[LoopFinding]:
        return sorted(
            self._findings, key=lambda f: (f.source, f.detected_at, f.trace)
        )

    def sources_with_loops(self) -> List[str]:
        return sorted({finding.source for finding in self._findings})

    def fingerprint(self) -> Tuple[Tuple[str, str, Tuple[str, ...]], ...]:
        return tuple(
            (f.source, f.detected_at, f.trace) for f in self.findings
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "loop_free": self.loop_free,
            "sources_checked": sorted(self._sources),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def __repr__(self) -> str:
        return f"LoopReport(loop_free={self.loop_free}, findings={len(self._findings)})"


# ---------------------------------------------------------------------------
# Invariants and drop-policy coverage
# ---------------------------------------------------------------------------


@dataclass
class InvariantCell:
    """Aggregated invariance verdict for one (source, field) pair."""

    checked: int = 0
    held: int = 0
    skipped: int = 0

    @property
    def violated(self) -> int:
        return self.checked - self.held

    @property
    def holds(self) -> bool:
        return self.checked == self.held

    def to_dict(self) -> Dict[str, int]:
        return {
            "checked": self.checked,
            "held": self.held,
            "violated": self.violated,
            "skipped": self.skipped,
        }


class InvariantReport:
    """Per-field invariance across the campaign plus drop-policy coverage.

    A field is *network-invariant* when it provably keeps its injected value
    on every delivered path from every injection port.  Drop-policy coverage
    verifies the mirror property: every packet that did **not** get delivered
    carries an explicit machine-readable stop reason (no path silently
    vanishes), and tabulates those reasons so a policy audit can diff them
    against expectations.
    """

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, str], InvariantCell] = {}
        self._drop_reasons: Dict[str, Dict[str, int]] = {}
        self._unexplained_drops: int = 0

    # -- construction -----------------------------------------------------------

    def record_field(
        self, source: str, field_name: str, checked: int, held: int, skipped: int = 0
    ) -> None:
        cell = self._cells.setdefault((source, field_name), InvariantCell())
        cell.checked += checked
        cell.held += held
        cell.skipped += skipped

    def record_drops(self, source: str, reasons: Dict[str, int]) -> None:
        row = self._drop_reasons.setdefault(source, {})
        for reason, count in reasons.items():
            if not reason:
                self._unexplained_drops += count
                reason = "<unexplained>"
            row[reason] = row.get(reason, 0) + count

    # -- queries ----------------------------------------------------------------

    @property
    def fields(self) -> List[str]:
        return sorted({field_name for _, field_name in self._cells})

    def field_holds(self, field_name: str) -> bool:
        """True only when the field was actually checked somewhere and never
        violated.  A field with zero checked paths (typo'd name, template
        that never allocates it) is vacuous, not verified — report False so
        the tool cannot hand out green verdicts it never earned."""
        cells = [
            cell for (_, name), cell in self._cells.items() if name == field_name
        ]
        checked = sum(cell.checked for cell in cells)
        return checked > 0 and all(cell.holds for cell in cells)

    def field_vacuous(self, field_name: str) -> bool:
        """True when the field was requested but no path could be checked."""
        cells = [
            cell for (_, name), cell in self._cells.items() if name == field_name
        ]
        return bool(cells) and sum(cell.checked for cell in cells) == 0

    def violations(self) -> List[Tuple[str, str, InvariantCell]]:
        return sorted(
            (source, name, cell)
            for (source, name), cell in self._cells.items()
            if not cell.holds
        )

    @property
    def drops_covered(self) -> bool:
        """True when every non-delivered path carried an explicit reason."""
        return self._unexplained_drops == 0

    def drop_reason_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for row in self._drop_reasons.values():
            for reason, count in row.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def fingerprint(self) -> Tuple:
        return (
            tuple(
                (source, name, cell.checked, cell.held, cell.skipped)
                for (source, name), cell in sorted(self._cells.items())
            ),
            tuple(sorted(self.drop_reason_totals().items())),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "fields": {
                name: {
                    "holds": self.field_holds(name),
                    "vacuous": self.field_vacuous(name),
                    "by_source": {
                        source: cell.to_dict()
                        for (source, cell_name), cell in sorted(self._cells.items())
                        if cell_name == name
                    },
                }
                for name in self.fields
            },
            "drop_policy": {
                "covered": self.drops_covered,
                "reasons": self.drop_reason_totals(),
                "by_source": {
                    source: dict(sorted(reasons.items()))
                    for source, reasons in sorted(self._drop_reasons.items())
                },
            },
        }

    def __repr__(self) -> str:
        return (
            f"InvariantReport(fields={self.fields}, "
            f"violations={len(self.violations())}, covered={self.drops_covered})"
        )


# ---------------------------------------------------------------------------
# Solver statistics roll-up
# ---------------------------------------------------------------------------


@dataclass
class CampaignStats:
    """Aggregated engine/solver counters across every job of a campaign."""

    jobs: int = 0
    paths: int = 0
    elapsed_seconds: float = 0.0
    solver_calls: int = 0
    solver_time_seconds: float = 0.0
    solver_fast_paths: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    solver_shared_cache_hits: int = 0
    solver_cache_merged: int = 0
    #: Sharded shared-tier traffic (repro.store.sharding): Manager proxy
    #: round-trips and batched verdict publishes across every job.
    solver_shared_round_trips: int = 0
    solver_shared_publish_batches: int = 0
    solver_shared_publish_entries: int = 0
    #: Best-effort operations that failed and were absorbed by a degrade
    #: path (dead shared-cache proxy, failed store quarantine move, ...)
    #: across every job plus the campaign driver's own store traffic.  The
    #: answers stay correct; a non-zero count means some tier ran degraded.
    degraded_operations: int = 0
    #: Distinct verdict-cache entries merged back into the campaign report
    #: (set by the aggregation, not absorbed per job).
    verdict_cache_entries: int = 0
    #: Persistent-store traffic (set by the campaign driver, not absorbed
    #: per job): verdicts available on disk at campaign start, and fresh
    #: verdicts this campaign appended to the store.
    store_entries_loaded: int = 0
    store_entries_published: int = 0
    #: Job-level symmetry reduction (set by the campaign driver): how many
    #: renaming-equivalence classes the job set partitioned into (0 when
    #: symmetry is off or could not be applied), and how many jobs were
    #: instantiated from a class representative instead of executed.
    symmetry_classes: int = 0
    jobs_skipped_by_symmetry: int = 0
    #: ``--symmetry-audit`` re-executions: real engine runs whose reports
    #: are discarded after comparing against the instantiated member, so
    #: they count here and never in ``jobs`` / ``jobs_skipped_by_symmetry``
    #: (``jobs == symmetry_classes + jobs_skipped_by_symmetry`` stays true
    #: with auditing on).
    symmetry_audit_runs: int = 0
    #: Delta verification (set by the campaign driver): jobs answered by
    #: splicing a stored baseline report instead of executing anything.
    jobs_spliced_by_delta: int = 0
    truncated_jobs: int = 0
    failed_jobs: int = 0
    wall_clock_seconds: float = 0.0

    def absorb(
        self,
        *,
        paths: int,
        elapsed_seconds: float,
        solver_calls: int,
        solver_time_seconds: float,
        solver_fast_paths: int,
        solver_cache_hits: int,
        solver_cache_misses: int,
        truncated: bool,
        failed: bool,
        solver_shared_cache_hits: int = 0,
        solver_cache_merged: int = 0,
        solver_shared_round_trips: int = 0,
        solver_shared_publish_batches: int = 0,
        solver_shared_publish_entries: int = 0,
        solver_degraded_operations: int = 0,
    ) -> None:
        self.jobs += 1
        self.paths += paths
        self.elapsed_seconds += elapsed_seconds
        self.solver_calls += solver_calls
        self.solver_time_seconds += solver_time_seconds
        self.solver_fast_paths += solver_fast_paths
        self.solver_cache_hits += solver_cache_hits
        self.solver_cache_misses += solver_cache_misses
        self.solver_shared_cache_hits += solver_shared_cache_hits
        self.solver_cache_merged += solver_cache_merged
        self.solver_shared_round_trips += solver_shared_round_trips
        self.solver_shared_publish_batches += solver_shared_publish_batches
        self.solver_shared_publish_entries += solver_shared_publish_entries
        self.degraded_operations += solver_degraded_operations
        if truncated:
            self.truncated_jobs += 1
        if failed:
            self.failed_jobs += 1

    @property
    def executed_jobs(self) -> int:
        """Jobs that actually ran an engine: the total minus the ports
        answered by delta splicing and by symmetry instantiation.  This is
        the per-worker-safe execution count (the process-local
        ``execution_counters`` only sees the parent's share under a pool)."""
        return self.jobs - self.jobs_spliced_by_delta - self.jobs_skipped_by_symmetry

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of memo-tier lookups served without a full solve."""
        lookups = (
            self.solver_cache_hits
            + self.solver_shared_cache_hits
            + self.solver_cache_misses
        )
        if not lookups:
            return 0.0
        return (
            self.solver_cache_hits + self.solver_shared_cache_hits
        ) / lookups

    def to_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "paths": self.paths,
            "elapsed_seconds": self.elapsed_seconds,
            "wall_clock_seconds": self.wall_clock_seconds,
            "solver_calls": self.solver_calls,
            "solver_time_seconds": self.solver_time_seconds,
            "solver_fast_paths": self.solver_fast_paths,
            "solver_cache_hits": self.solver_cache_hits,
            "solver_cache_misses": self.solver_cache_misses,
            "solver_shared_cache_hits": self.solver_shared_cache_hits,
            "solver_cache_merged": self.solver_cache_merged,
            "solver_shared_round_trips": self.solver_shared_round_trips,
            "solver_shared_publish_batches": self.solver_shared_publish_batches,
            "solver_shared_publish_entries": self.solver_shared_publish_entries,
            "degraded_operations": self.degraded_operations,
            "store_entries_loaded": self.store_entries_loaded,
            "store_entries_published": self.store_entries_published,
            "symmetry_classes": self.symmetry_classes,
            "jobs_skipped_by_symmetry": self.jobs_skipped_by_symmetry,
            "symmetry_audit_runs": self.symmetry_audit_runs,
            "jobs_spliced_by_delta": self.jobs_spliced_by_delta,
            "executed_jobs": self.executed_jobs,
            "cache_hit_rate": self.cache_hit_rate,
            "verdict_cache_entries": self.verdict_cache_entries,
            "truncated_jobs": self.truncated_jobs,
            "failed_jobs": self.failed_jobs,
        }
