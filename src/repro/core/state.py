"""Per-path execution state.

An :class:`ExecutionState` is "the packet": header memory, metadata map, the
tag table, the accumulated path constraints and bookkeeping (visited ports,
executed instructions, per-port snapshots for loop detection).  Instructions
never share mutable state between paths — ``clone`` produces an independent
copy whenever the engine forks.

Cloning is copy-on-write throughout: header/metadata stores share slot
stacks with the parent until mutated (see :mod:`repro.core.memory`), the
port/instruction traces are :class:`AppendLog` chains that share their
prefix, and port snapshots are immutable tuples shared by reference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.errors import MemorySafetyError
from repro.core.memory import HeaderMemory, MetadataStore, MetaKey
from repro.core.values import SymbolFactory, term_to_string
from repro.sefl.fields import HeaderField, TagOffset, VariableLike
from repro.solver.ast import Formula, Term

_path_counter = itertools.count(1)


class PathStatusValues:
    ALIVE = "alive"
    FAILED = "failed"
    DELIVERED = "delivered"
    DROPPED = "dropped"
    LOOP = "loop"
    INFEASIBLE = "infeasible"


class AppendLog:
    """An append-only sequence with O(1) copy-on-write clones.

    Each log is a chain: an immutable view of ``_upto`` items of a parent
    log plus a private tail.  ``clone()`` freezes the current contents as the
    shared prefix of a new log; the original keeps appending to its own tail
    without affecting any clone (tails are append-only, and clones record
    how far into the parent's tail they may look).
    """

    __slots__ = ("_parent", "_upto", "_base_len", "_items")

    def __init__(
        self, parent: Optional["AppendLog"] = None, upto: int = 0
    ) -> None:
        self._parent = parent
        self._upto = upto
        self._base_len = (parent._base_len + upto) if parent is not None else 0
        self._items: list = []

    def append(self, item) -> None:
        self._items.append(item)

    def clone(self) -> "AppendLog":
        return AppendLog(self, len(self._items))

    def __len__(self) -> int:
        return self._base_len + len(self._items)

    def __iter__(self) -> Iterator:
        segments = []
        node: Optional[AppendLog] = self
        upto = len(self._items)
        while node is not None:
            segments.append((node._items, upto))
            upto = node._upto
            node = node._parent
        for items, limit in reversed(segments):
            for index in range(limit):
                yield items[index]

    def __bool__(self) -> bool:
        return len(self) > 0

    def to_list(self) -> list:
        return list(self)

    def __repr__(self) -> str:
        return f"AppendLog({list(self)!r})"


@dataclass
class PortSnapshot:
    """Constraints recorded when the path previously visited a port.

    ``constraints`` is the full conjunction at snapshot time.  Because path
    constraints are append-only along one path, it is also a *prefix* of the
    path's later constraint lists; ``len(constraints)`` therefore tells the
    loop detector where the incremental suffix of new constraints starts.
    """

    port: str
    constraints: Tuple[Formula, ...]
    _constraint_set: Optional[frozenset] = field(
        default=None, repr=False, compare=False
    )

    @property
    def constraint_count(self) -> int:
        return len(self.constraints)

    def contains(self, formula: Formula) -> bool:
        """Structural membership of ``formula`` in the snapshot conjunction."""
        if self._constraint_set is None:
            self._constraint_set = frozenset(self.constraints)
        return formula in self._constraint_set


class ExecutionState:
    """The symbolic state of one execution path (one packet)."""

    def __init__(self, symbols: Optional[SymbolFactory] = None) -> None:
        self.symbols = symbols if symbols is not None else SymbolFactory()
        self.header = HeaderMemory()
        self.metadata = MetadataStore()
        self.tags: Dict[str, int] = {}
        self.constraints: List[Formula] = []
        self.port_trace: AppendLog = AppendLog()
        self.instruction_trace: AppendLog = AppendLog()
        self.port_snapshots: Dict[str, Tuple[PortSnapshot, ...]] = {}
        self.status: str = PathStatusValues.ALIVE
        self.stop_reason: str = ""
        self.current_scope: Optional[str] = None
        self.path_id: int = next(_path_counter)
        self.parent_id: Optional[int] = None
        self.hop_count: int = 0
        # Wired up by the engine when incremental solving is enabled; holds a
        # repro.solver.incremental.SolverContext mirroring self.constraints.
        self.solver_context = None

    # -- lifecycle -------------------------------------------------------------

    def clone(self) -> "ExecutionState":
        """Create an independent copy (used by If / Fork).

        Copy-on-write: memory stores, traces, snapshots and the solver
        context all share structure with the parent until one side mutates.
        """
        copy = ExecutionState.__new__(ExecutionState)
        copy.symbols = self.symbols  # shared on purpose: ids must stay unique
        copy.header = self.header.clone()
        copy.metadata = self.metadata.clone()
        copy.tags = dict(self.tags)
        copy.constraints = list(self.constraints)
        copy.port_trace = self.port_trace.clone()
        copy.instruction_trace = self.instruction_trace.clone()
        copy.port_snapshots = dict(self.port_snapshots)
        copy.status = self.status
        copy.stop_reason = self.stop_reason
        copy.current_scope = self.current_scope
        copy.path_id = next(_path_counter)
        copy.parent_id = self.path_id
        copy.hop_count = self.hop_count
        copy.solver_context = (
            self.solver_context.clone() if self.solver_context is not None else None
        )
        return copy

    def fail(self, reason: str) -> None:
        self.status = PathStatusValues.FAILED
        self.stop_reason = reason

    def mark_infeasible(self, reason: str) -> None:
        """Terminate the path as a provably-infeasible branch."""
        self.status = PathStatusValues.INFEASIBLE
        self.stop_reason = reason

    @property
    def is_alive(self) -> bool:
        return self.status == PathStatusValues.ALIVE

    # -- tags -----------------------------------------------------------------

    def create_tag(self, name: str, value: int) -> None:
        self.tags[name] = value

    def destroy_tag(self, name: str) -> None:
        if name not in self.tags:
            raise MemorySafetyError(f"destroying unknown tag {name!r}")
        del self.tags[name]

    def tag_value(self, name: str) -> int:
        if name not in self.tags:
            raise MemorySafetyError(f"reference to unknown tag {name!r}")
        return self.tags[name]

    # -- variable resolution ---------------------------------------------------

    def resolve_address(self, variable: Union[int, TagOffset, HeaderField]) -> int:
        """Turn a header variable specification into an absolute bit address."""
        if isinstance(variable, bool):  # guard against bool being an int
            raise MemorySafetyError(f"invalid header address {variable!r}")
        if isinstance(variable, int):
            return variable
        if isinstance(variable, TagOffset):
            return self.tag_value(variable.tag) + variable.offset
        raise MemorySafetyError(f"invalid header address {variable!r}")

    @staticmethod
    def variable_width(variable: VariableLike) -> Optional[int]:
        if isinstance(variable, HeaderField):
            return variable.width
        return None

    def describe_variable(self, variable: VariableLike) -> str:
        if isinstance(variable, HeaderField):
            return variable.name
        if isinstance(variable, TagOffset):
            return repr(variable)
        return repr(variable)

    # -- header access ---------------------------------------------------------

    def allocate_header(self, variable: VariableLike, size: int) -> None:
        address = self.resolve_address(variable)  # type: ignore[arg-type]
        self.header.allocate(address, size)

    def deallocate_header(
        self, variable: VariableLike, size: Optional[int] = None
    ) -> None:
        address = self.resolve_address(variable)  # type: ignore[arg-type]
        self.header.deallocate(address, size)

    def read_header(self, variable: VariableLike) -> Term:
        address = self.resolve_address(variable)  # type: ignore[arg-type]
        return self.header.read(address, self.variable_width(variable))

    def write_header(self, variable: VariableLike, term: Term) -> None:
        address = self.resolve_address(variable)  # type: ignore[arg-type]
        self.header.write(address, term, self.variable_width(variable))

    # -- metadata access --------------------------------------------------------

    def allocate_metadata(
        self, name: str, size: Optional[int] = None, local: bool = False
    ) -> None:
        scope = self.current_scope if local else None
        key = MetadataStore.scoped_key(name, scope)
        self.metadata.allocate(key, size)

    def deallocate_metadata(self, name: str, size: Optional[int] = None) -> None:
        key = self._visible_metadata_key(name)
        self.metadata.deallocate(key, size)

    def _visible_metadata_key(self, name: str) -> MetaKey:
        key = self.metadata.resolve(name, self.current_scope)
        if key is None:
            raise MemorySafetyError(f"access to unallocated metadata {name!r}")
        return key

    def read_metadata(self, name: str) -> Term:
        return self.metadata.read(self._visible_metadata_key(name))

    def write_metadata(self, name: str, term: Term) -> None:
        self.metadata.write(self._visible_metadata_key(name), term)

    def has_metadata(self, name: str) -> bool:
        return self.metadata.resolve(name, self.current_scope) is not None

    # -- unified variable access ------------------------------------------------

    def read_variable(self, variable: VariableLike) -> Term:
        if isinstance(variable, str):
            return self.read_metadata(variable)
        return self.read_header(variable)

    def write_variable(self, variable: VariableLike, term: Term) -> None:
        if isinstance(variable, str):
            self.write_metadata(variable, term)
        else:
            self.write_header(variable, term)

    def variable_history(self, variable: VariableLike) -> List[Term]:
        """Assignment history of the current allocation of ``variable``."""
        if isinstance(variable, str):
            return self.metadata.history(self._visible_metadata_key(variable))
        address = self.resolve_address(variable)  # type: ignore[arg-type]
        return self.header.history(address)

    def variable_stack(self, variable: VariableLike) -> List[Optional[Term]]:
        """Current value of every stacked allocation of a header variable,
        bottom (oldest, possibly masked) to top (visible)."""
        if isinstance(variable, str):
            key = self._visible_metadata_key(variable)
            return [self.metadata.read(key)]
        address = self.resolve_address(variable)  # type: ignore[arg-type]
        return self.header.stack_values(address)

    # -- constraints -------------------------------------------------------------

    def add_constraint(self, formula: Formula) -> None:
        self.constraints.append(formula)

    def constraint_count(self) -> int:
        return len(self.constraints)

    # -- bookkeeping --------------------------------------------------------------

    def record_port(self, port_id: str) -> None:
        self.port_trace.append(port_id)

    def record_instruction(self, description: str) -> None:
        self.instruction_trace.append(description)

    def snapshot_port(self, port_id: str) -> None:
        snapshot = PortSnapshot(port_id, tuple(self.constraints))
        # Snapshot tuples are immutable and rebound on append, so clones can
        # share the dict values by reference.
        existing = self.port_snapshots.get(port_id, ())
        self.port_snapshots[port_id] = existing + (snapshot,)

    def snapshots_for(self, port_id: str) -> List[PortSnapshot]:
        return list(self.port_snapshots.get(port_id, ()))

    # -- reporting ----------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A JSON-friendly summary of the state (used in path reports)."""
        header_values = {}
        for address in self.header.addresses():
            term = self.header._top(address, None).current
            header_values[str(address)] = (
                term_to_string(term) if term is not None else None
            )
        metadata_values = {}
        for key in self.metadata.keys():
            term = self.metadata._top(key).current
            metadata_values[str(key)] = (
                term_to_string(term) if term is not None else None
            )
        return {
            "path_id": self.path_id,
            "status": self.status,
            "stop_reason": self.stop_reason,
            "tags": dict(self.tags),
            "headers": header_values,
            "metadata": metadata_values,
            "constraint_count": len(self.constraints),
            "ports_visited": list(self.port_trace),
        }
