"""Delta verification: re-verify only what a change touched.

The paper's operational pitch is verification fast enough to run on every
network change — but a naive rerun after editing one device file re-executes
every injection port.  This module closes that gap for snapshot-directory
networks:

* :class:`ElementManifest` is the per-element content identity a build
  records (``topology.txt`` digest + per-snapshot-file digest + the element
  names each file expanded into) — see
  :func:`repro.parsers.topology_file.load_network_directory`, which attaches
  it to the network it returns at zero extra I/O.
* :func:`diff_manifests` compares the manifest a previous campaign ran
  against with the manifest of the directory as it stands now, yielding the
  *touched element set* (or "incompatible" when the topology itself changed
  and a full rerun is the only sound answer).
* :func:`affected_injections` maps touched elements to the injection ports
  whose answers could depend on them, via the element-level reverse link
  closure (:func:`repro.network.view.elements_reaching`) — a sound
  over-approximation of anything the engine can traverse.
* :class:`CampaignBaseline` packages a previous run's manifest plus its
  per-port :class:`~repro.core.campaign.JobReport` payloads; the campaign
  splices baseline reports for unaffected ports into the fresh result and
  executes only the rest (one edited ACL on a wide network ≈ one engine
  job, and symmetry still collapses whatever does rerun).

The standing invariant applies: delta on/off changes which tier answers,
never the answer — a spliced result is bit-identical to a full rerun.
Anything malformed, stale or unprovable therefore degrades to "execute the
job", never to "trust the baseline".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.network.view import elements_reaching

#: Baseline payload format version; bump on incompatible layout changes
#: (readers reject unknown versions and fall back to a full rerun).
BASELINE_FORMAT = 1

#: The JobReport fields a baseline persists: exactly the semantic content
#: (what the answer is), none of the provenance (who computed it, how fast).
_REPORT_FIELDS = (
    "element",
    "port",
    "packet",
    "status_counts",
    "delivered_to",
    "loops",
    "drop_reasons",
    "invariants",
    "visibility",
    "witnesses",
    "delivered_examples",
    "truncated",
)


@dataclass
class ElementManifest:
    """Per-element content identity of one snapshot directory build."""

    #: sha256 of the exact ``topology.txt`` bytes the build parsed.
    topology_digest: str
    #: snapshot file name -> {"digest": sha256 hex, "elements": [names]}.
    files: Dict[str, Dict[str, object]]

    def to_payload(self) -> Dict[str, object]:
        return {
            "topology_digest": self.topology_digest,
            "files": {
                name: {
                    "digest": str(entry.get("digest", "")),
                    "elements": sorted(str(e) for e in entry.get("elements", ())),
                }
                for name, entry in self.files.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: object) -> Optional["ElementManifest"]:
        """Parse a manifest payload, ``None`` on anything malformed."""
        if not isinstance(payload, Mapping):
            return None
        digest = payload.get("topology_digest")
        files = payload.get("files")
        if not isinstance(digest, str) or not isinstance(files, Mapping):
            return None
        parsed: Dict[str, Dict[str, object]] = {}
        for name, entry in files.items():
            if not isinstance(entry, Mapping) or not isinstance(
                entry.get("digest"), str
            ):
                return None
            parsed[str(name)] = {
                "digest": entry["digest"],
                "elements": [str(e) for e in entry.get("elements", ())],
            }
        return cls(topology_digest=digest, files=parsed)

    @classmethod
    def of_network(cls, network: object) -> Optional["ElementManifest"]:
        """The manifest a directory build attached to its network
        (``None`` for networks that did not come from a directory)."""
        return cls.from_payload(getattr(network, "source_manifest", None))


@dataclass(frozen=True)
class ManifestDiff:
    """What changed between two builds of the same directory."""

    compatible: bool
    reason: str = ""
    touched_files: Tuple[str, ...] = ()
    touched_elements: Tuple[str, ...] = ()


def diff_manifests(old: ElementManifest, new: ElementManifest) -> ManifestDiff:
    """The touched element set between two manifests, or "incompatible"
    when the link structure itself may have changed (topology edit,
    referenced-file set change): element-level splicing is only sound when
    both builds share one link graph, which an identical ``topology.txt``
    guarantees."""
    if old.topology_digest != new.topology_digest:
        return ManifestDiff(False, "topology.txt changed")
    if set(old.files) != set(new.files):
        return ManifestDiff(False, "referenced snapshot set changed")
    touched_files = sorted(
        name
        for name in new.files
        if new.files[name]["digest"] != old.files[name]["digest"]
    )
    touched: Set[str] = set()
    for name in touched_files:
        # Union of both sides: an edit can change which elements a file
        # expands into (click configs), and an element present in either
        # build taints every port that could reach its name.
        touched.update(str(e) for e in old.files[name].get("elements", ()))
        touched.update(str(e) for e in new.files[name].get("elements", ()))
    return ManifestDiff(True, "", tuple(touched_files), tuple(sorted(touched)))


def affected_injections(
    network: object,
    injections: Iterable[Tuple[str, str]],
    touched_elements: Iterable[str],
) -> Set[Tuple[str, str]]:
    """The injection ports whose answers could depend on a touched element:
    every port whose element reaches a touched name along the link graph."""
    touched = set(touched_elements)
    if not touched:
        return set()
    reaching = elements_reaching(network, touched)
    return {(elem, port) for elem, port in injections if elem in reaching}


def report_to_payload(report: object) -> Dict[str, object]:
    """One JobReport's semantic content as a JSON-able payload (the
    inverse of :func:`report_from_payload`)."""
    return {name: getattr(report, name) for name in _REPORT_FIELDS}


def report_from_payload(payload: Mapping[str, object], spliced_from: str):
    """Rebuild a JobReport from a baseline payload.  Solver and timing
    counters stay zero — no engine work happened for this port — and the
    report is marked with where it was spliced from, so JSON consumers can
    tell a reused answer from a recomputed one."""
    from repro.core.campaign import JobReport

    report = JobReport(
        element=str(payload["element"]),
        port=str(payload["port"]),
        packet=str(payload["packet"]),
        delta_spliced_from=spliced_from,
    )
    report.status_counts = {str(k): int(v) for k, v in payload["status_counts"].items()}
    report.delivered_to = {str(k): int(v) for k, v in payload["delivered_to"].items()}
    report.loops = [
        {
            "detected_at": str(loop.get("detected_at", "")),
            "reason": str(loop.get("reason", "")),
            "trace": [str(port) for port in loop.get("trace", ())],
        }
        for loop in payload["loops"]
    ]
    report.drop_reasons = {str(k): int(v) for k, v in payload["drop_reasons"].items()}
    report.invariants = {
        str(name): {str(k): int(v) for k, v in cell.items()}
        for name, cell in payload["invariants"].items()
    }
    report.visibility = {
        str(name): {
            str(dest): {str(k): int(v) for k, v in cell.items()}
            for dest, cell in row.items()
        }
        for name, row in payload["visibility"].items()
    }
    report.witnesses = {
        str(name): {str(dest): [int(v) for v in vals] for dest, vals in row.items()}
        for name, row in payload["witnesses"].items()
    }
    report.delivered_examples = {
        str(dest): [str(port) for port in trace]
        for dest, trace in payload["delivered_examples"].items()
    }
    report.truncated = bool(payload["truncated"])
    return report


@dataclass
class CampaignBaseline:
    """A previous campaign's manifest plus its per-port report payloads —
    what delta verification splices unaffected answers from."""

    manifest: ElementManifest
    #: ``element:port`` -> {"config": job config digest, "report": payload}.
    reports: Dict[str, Dict[str, object]]
    #: Directory the baseline was recorded for (informational).
    source: str = ""

    def ports(self) -> List[str]:
        """The ``element:port`` keys this baseline holds answers for."""
        return sorted(self.reports)

    def describe(self) -> str:
        """One-line summary for logs and scenario reports."""
        origin = f" from {self.source}" if self.source else ""
        return (
            f"baseline{origin}: {len(self.reports)} ports, "
            f"{len(self.manifest.files)} snapshot files"
        )

    def report_for(
        self, key: str, config: str
    ) -> Optional[Mapping[str, object]]:
        """The stored payload for one port, but only when the job that
        produced it ran under exactly the same behaviour-relevant config
        (packet, queries, budgets — see ``_job_config_digest``)."""
        entry = self.reports.get(key)
        if not isinstance(entry, Mapping) or entry.get("config") != config:
            return None
        payload = entry.get("report")
        return payload if isinstance(payload, Mapping) else None

    def to_payload(self) -> Dict[str, object]:
        return {
            "format": BASELINE_FORMAT,
            "source": self.source,
            "manifest": self.manifest.to_payload(),
            "reports": self.reports,
        }

    @classmethod
    def from_payload(cls, payload: object) -> Optional["CampaignBaseline"]:
        """Parse a baseline payload; ``None`` on anything malformed (the
        caller falls back to a full rerun — baselines are an accelerator,
        never a prerequisite)."""
        if not isinstance(payload, Mapping):
            return None
        if payload.get("format") != BASELINE_FORMAT:
            return None
        manifest = ElementManifest.from_payload(payload.get("manifest"))
        reports = payload.get("reports")
        if manifest is None or not isinstance(reports, Mapping):
            return None
        return cls(
            manifest=manifest,
            reports={str(k): dict(v) for k, v in reports.items()},
            source=str(payload.get("source", "")),
        )


def baseline_payload(
    manifest: ElementManifest,
    configs: Mapping[str, str],
    reports: Iterable[object],
    source: str = "",
) -> Dict[str, object]:
    """Package a finished campaign as the next run's baseline.  Errored
    reports are left out (their answer is not an answer); everything else —
    executed, symmetry-instantiated or itself spliced — carries the same
    semantic content a fresh run would produce, so all of it is reusable."""
    entries: Dict[str, Dict[str, object]] = {}
    for report in reports:
        if getattr(report, "error", None) is not None:
            continue
        key = report.source_key
        config = configs.get(key)
        if config is None:
            continue
        entries[key] = {"config": config, "report": report_to_payload(report)}
    return CampaignBaseline(
        manifest=manifest, reports=entries, source=source
    ).to_payload()
