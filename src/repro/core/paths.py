"""Execution path records and result containers.

The tool's output is "the list of explored paths in json format.  For every
path SymNet lists all variables and their constraints at the end of the
execution as well as all the instructions and ports this path has visited"
(§7.1).  :class:`PathRecord` captures one such path; :class:`ExecutionResult`
aggregates them and provides the query helpers used by the verification and
benchmark layers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.state import ExecutionState, PathStatusValues
from repro.network.ports import PortId


class PathStatus(PathStatusValues):
    """Terminal statuses of an execution path.

    * ``delivered`` — the packet reached an output port with no outgoing
      link (it left the modeled network);
    * ``dropped`` — an input-port program finished without forwarding;
    * ``failed`` — ``Fail`` was executed, a constraint was unsatisfiable, or
      a memory-safety violation occurred;
    * ``infeasible`` — an ``If`` branch whose constraints the solver proved
      unsatisfiable (recorded only when both
      ``ExecutionSettings.record_infeasible_branches`` and
      ``record_failed_paths`` are set);
    * ``loop`` — the loop-detection algorithm proved the packet revisits a
      port with a subsuming state;
    * ``alive`` — only seen transiently while the engine is still running.
    """


@dataclass
class PathRecord:
    """One explored execution path."""

    state: ExecutionState
    status: str
    stop_reason: str = ""
    last_port: Optional[PortId] = None

    @property
    def path_id(self) -> int:
        return self.state.path_id

    @property
    def ports_visited(self) -> List[str]:
        return list(self.state.port_trace)

    @property
    def constraints(self):
        return list(self.state.constraints)

    def reached(self, element: str, port: Optional[str] = None) -> bool:
        """True if the path terminated at the given element (and port)."""
        if self.last_port is None:
            return False
        if self.last_port.element != element:
            return False
        return port is None or self.last_port.port == port

    def visited(self, element: str, port: Optional[str] = None) -> bool:
        """True if the path passed through the given element (and port)."""
        for visited in self.state.port_trace:
            name, _, p = visited.partition(":")
            if name == element and (port is None or p == port):
                return True
        return False

    def to_dict(self) -> Dict[str, object]:
        summary = self.state.summary()
        summary.update(
            {
                "status": self.status,
                "stop_reason": self.stop_reason,
                "last_port": str(self.last_port) if self.last_port else None,
                "instructions": list(self.state.instruction_trace),
            }
        )
        return summary


@dataclass
class ExecutionResult:
    """All paths produced by one symbolic execution run."""

    paths: List[PathRecord] = field(default_factory=list)
    injected_at: Optional[PortId] = None
    elapsed_seconds: float = 0.0
    solver_calls: int = 0
    solver_time_seconds: float = 0.0
    solver_fast_paths: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    solver_shared_cache_hits: int = 0
    solver_shared_round_trips: int = 0
    solver_shared_publish_batches: int = 0
    solver_shared_publish_entries: int = 0
    #: Best-effort operations (shared-tier publishes, store moves) that
    #: failed and were absorbed by a degrade path during this run.
    solver_degraded_operations: int = 0
    #: True when ``max_paths`` stopped exploration with frontier states
    #: still pending — the path list is a prefix, not the full set.
    truncated: bool = False

    def add(self, record: PathRecord) -> None:
        self.paths.append(record)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    # -- queries -----------------------------------------------------------------

    def delivered(self) -> List[PathRecord]:
        return [p for p in self.paths if p.status == PathStatus.DELIVERED]

    def failed(self) -> List[PathRecord]:
        return [p for p in self.paths if p.status == PathStatus.FAILED]

    def dropped(self) -> List[PathRecord]:
        return [p for p in self.paths if p.status == PathStatus.DROPPED]

    def loops(self) -> List[PathRecord]:
        return [p for p in self.paths if p.status == PathStatus.LOOP]

    def infeasible(self) -> List[PathRecord]:
        return [p for p in self.paths if p.status == PathStatus.INFEASIBLE]

    def reaching(self, element: str, port: Optional[str] = None) -> List[PathRecord]:
        """Delivered paths that terminated at the given element/port."""
        return [p for p in self.delivered() if p.reached(element, port)]

    def is_reachable(self, element: str, port: Optional[str] = None) -> bool:
        return bool(self.reaching(element, port))

    def visiting(self, element: str, port: Optional[str] = None) -> List[PathRecord]:
        """Delivered paths that passed through the given element/port at any
        hop (useful when the element's ports all have outgoing links, so no
        path can *terminate* there)."""
        return [p for p in self.delivered() if p.visited(element, port)]

    def is_visited(self, element: str, port: Optional[str] = None) -> bool:
        return bool(self.visiting(element, port))

    def filter(self, predicate: Callable[[PathRecord], bool]) -> List[PathRecord]:
        return [p for p in self.paths if predicate(p)]

    # -- reporting ----------------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise all explored paths, mirroring the tool's json output."""
        payload = {
            "injected_at": str(self.injected_at) if self.injected_at else None,
            "elapsed_seconds": self.elapsed_seconds,
            "solver_calls": self.solver_calls,
            "solver_time_seconds": self.solver_time_seconds,
            "solver_fast_paths": self.solver_fast_paths,
            "solver_cache_hits": self.solver_cache_hits,
            "solver_cache_misses": self.solver_cache_misses,
            "truncated": self.truncated,
            "path_count": len(self.paths),
            "paths": [p.to_dict() for p in self.paths],
        }
        return json.dumps(payload, indent=indent)

    def summary_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.paths:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts
