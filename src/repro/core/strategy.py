"""Pluggable exploration strategies for the symbolic execution worklist.

The engine's frontier used to be a hard-coded LIFO list.  A strategy object
now owns the frontier, deciding which pending ``(state, element, port)``
work item to execute next:

* ``dfs`` — depth-first (LIFO), the historical default: follows one packet
  to a terminal before starting the next, keeping the frontier small;
* ``bfs`` — breadth-first (FIFO): explores hop-by-hop, useful for finding
  the shortest path to a property violation first;
* ``coverage`` — coverage-ordered: prefers the frontier item whose next
  input port has been entered least often so far, spreading exploration
  across the topology before deepening any one region (useful with a
  ``max_paths`` budget on very wide networks).

The terminal *set* of paths is strategy-independent (loop detection and
feasibility are per-path properties); only the order of discovery — and
therefore which paths survive a ``max_paths`` truncation — changes.

New strategies: subclass :class:`ExplorationStrategy` and register the class
in :data:`STRATEGIES`, or pass a zero-argument factory callable as
``ExecutionSettings.strategy``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Tuple, Union

# (state, element name, input port) — typed loosely to avoid importing the
# engine's state class here.
WorkItem = Tuple[object, str, str]


class ExplorationStrategy:
    """Order in which pending execution states are expanded."""

    name = "abstract"

    def push(self, item: WorkItem) -> None:
        raise NotImplementedError

    def pop(self) -> WorkItem:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class DepthFirstStrategy(ExplorationStrategy):
    """LIFO frontier — follow one packet to the end before backtracking."""

    name = "dfs"

    def __init__(self) -> None:
        self._stack: List[WorkItem] = []

    def push(self, item: WorkItem) -> None:
        self._stack.append(item)

    def pop(self) -> WorkItem:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class BreadthFirstStrategy(ExplorationStrategy):
    """FIFO frontier — expand all states at hop N before any at hop N+1."""

    name = "bfs"

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, item: WorkItem) -> None:
        self._queue.append(item)

    def pop(self) -> WorkItem:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class CoverageOrderedStrategy(ExplorationStrategy):
    """Prefer work items entering the least-visited input port.

    Visit counts are taken at push time (a cheap, deterministic
    approximation: re-prioritising queued items on every pop would cost a
    heap rebuild); ties break FIFO via a monotone sequence number.
    """

    name = "coverage"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, WorkItem]] = []
        self._visits: Dict[Tuple[str, str], int] = {}
        self._sequence = 0

    def push(self, item: WorkItem) -> None:
        key = (item[1], item[2])
        priority = self._visits.get(key, 0)
        heapq.heappush(self._heap, (priority, self._sequence, item))
        self._sequence += 1

    def pop(self) -> WorkItem:
        _, _, item = heapq.heappop(self._heap)
        key = (item[1], item[2])
        self._visits[key] = self._visits.get(key, 0) + 1
        return item

    def __len__(self) -> int:
        return len(self._heap)


STRATEGIES: Dict[str, Callable[[], ExplorationStrategy]] = {
    DepthFirstStrategy.name: DepthFirstStrategy,
    BreadthFirstStrategy.name: BreadthFirstStrategy,
    CoverageOrderedStrategy.name: CoverageOrderedStrategy,
}


def make_strategy(
    strategy: Union[str, Callable[[], ExplorationStrategy]]
) -> ExplorationStrategy:
    """Build a fresh frontier from a registered name or a factory callable."""
    if isinstance(strategy, str):
        try:
            factory = STRATEGIES[strategy]
        except KeyError:
            known = ", ".join(sorted(STRATEGIES))
            raise ValueError(
                f"unknown exploration strategy {strategy!r}; known: {known}"
            ) from None
        return factory()
    if callable(strategy):
        frontier = strategy()
        if not isinstance(frontier, ExplorationStrategy):
            raise TypeError(
                "strategy factory must produce an ExplorationStrategy, "
                f"got {frontier!r}"
            )
        return frontier
    raise TypeError(f"invalid exploration strategy {strategy!r}")
