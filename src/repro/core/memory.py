"""Packet memory: header variables at bit addresses and the metadata map.

SEFL's packet layout mimics real packets (Figure 6): header fields live at
absolute bit offsets, must be allocated before use, and accesses must line up
exactly with an allocation.  Metadata entries live in a string-keyed map with
no alignment rules and may be global or local to a network element.

Both stores keep a *stack* of slots per variable: ``Allocate`` pushes a new
slot (masking the previous value, e.g. during encapsulation) and
``Deallocate`` pops it, restoring the old value.  Each slot also records its
full assignment history, which the verification layer uses for invariance and
header-visibility checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.errors import MemorySafetyError
from repro.solver.ast import Term


@dataclass
class Slot:
    """One allocation of a variable: its size and its value history."""

    size: Optional[int]
    values: List[Term] = field(default_factory=list)

    @property
    def current(self) -> Optional[Term]:
        return self.values[-1] if self.values else None

    def assign(self, term: Term) -> None:
        self.values.append(term)

    def clone(self) -> "Slot":
        return Slot(self.size, list(self.values))


class _CowSlotStore:
    """A dict of per-key slot stacks with copy-on-write cloning.

    ``clone()`` copies only the key→stack dict (pointer copies); a stack is
    duplicated the first time either side mutates its key.  Forking a path
    is therefore O(number of keys) instead of O(total assignment history).
    Subclasses validate accesses and raise their own error messages, then
    mutate through ``_push_slot`` / ``_pop_slot`` / ``_assign_top``.
    """

    def __init__(self) -> None:
        self._slots: Dict = {}
        # None: this store was never cloned and owns every stack.  Otherwise:
        # the set of keys whose stacks are private to this instance.
        self._owned: Optional[set] = None

    def _own(self, key) -> Optional[List[Slot]]:
        """Return a privately-owned (mutable) stack for ``key``."""
        stack = self._slots.get(key)
        if stack is None:
            return None
        if self._owned is not None and key not in self._owned:
            stack = [slot.clone() for slot in stack]
            self._slots[key] = stack
            self._owned.add(key)
        return stack

    def _push_slot(self, key, slot: Slot) -> None:
        stack = self._own(key)
        if stack is None:
            stack = []
            self._slots[key] = stack
            if self._owned is not None:
                self._owned.add(key)
        stack.append(slot)

    def _pop_slot(self, key) -> None:
        """Pop the top slot of an existing stack (caller has validated)."""
        stack = self._own(key)
        assert stack is not None
        stack.pop()
        if not stack:
            del self._slots[key]
            if self._owned is not None:
                self._owned.discard(key)

    def _assign_top(self, key, term: Term) -> None:
        """Assign to the top slot of an existing stack (caller has validated)."""
        stack = self._own(key)
        assert stack is not None
        stack[-1].assign(term)

    def clone(self):
        copy = type(self).__new__(type(self))
        copy._slots = dict(self._slots)
        copy._owned = set()
        # The parent now shares every stack with the clone, so it no longer
        # owns anything either.
        self._owned = set()
        return copy


class HeaderMemory(_CowSlotStore):
    """Bit-addressed header variables with allocation stacks."""

    # -- allocation -----------------------------------------------------------

    def allocate(self, address: int, size: int) -> None:
        if size is None or size <= 0:
            raise MemorySafetyError(
                f"header allocation at {address} requires a positive size"
            )
        self._push_slot(address, Slot(size))

    def deallocate(self, address: int, size: Optional[int] = None) -> None:
        stack = self._slots.get(address)
        if not stack:
            raise MemorySafetyError(
                f"deallocating unallocated header address {address}"
            )
        top = stack[-1]
        if size is not None and top.size != size:
            raise MemorySafetyError(
                f"deallocation size {size} does not match allocated size "
                f"{top.size} at address {address}"
            )
        self._pop_slot(address)

    # -- access ---------------------------------------------------------------

    def is_allocated(self, address: int) -> bool:
        return bool(self._slots.get(address))

    def _top(self, address: int, width: Optional[int]) -> Slot:
        stack = self._slots.get(address)
        if not stack:
            raise MemorySafetyError(
                f"access to unallocated header address {address}"
            )
        top = stack[-1]
        if width is not None and top.size is not None and top.size != width:
            raise MemorySafetyError(
                f"unaligned access at address {address}: allocated size "
                f"{top.size}, accessed as {width} bits"
            )
        return top

    def read(self, address: int, width: Optional[int] = None) -> Term:
        slot = self._top(address, width)
        if slot.current is None:
            raise MemorySafetyError(
                f"read of allocated but never-assigned header address {address}"
            )
        return slot.current

    def write(self, address: int, term: Term, width: Optional[int] = None) -> None:
        self._top(address, width)  # validates allocation and alignment
        self._assign_top(address, term)

    def size_of(self, address: int) -> int:
        slot = self._top(address, None)
        assert slot.size is not None
        return slot.size

    def history(self, address: int) -> List[Term]:
        """Assignment history of the *current* allocation of ``address``."""
        return list(self._top(address, None).values)

    def depth(self, address: int) -> int:
        """Number of stacked allocations at ``address``."""
        return len(self._slots.get(address, ()))

    def stack_values(self, address: int) -> List[Optional[Term]]:
        """Current value of every stacked allocation, bottom to top.

        Used by header-visibility analyses: the bottom entries are values
        masked by later allocations (e.g. the cleartext payload hidden behind
        an encryption mask)."""
        stack = self._slots.get(address)
        if not stack:
            raise MemorySafetyError(
                f"access to unallocated header address {address}"
            )
        return [slot.current for slot in stack]

    def addresses(self) -> List[int]:
        return sorted(self._slots)

MetaKey = Union[str, Tuple[str, str]]


class MetadataStore(_CowSlotStore):
    """String-keyed metadata map with global / element-local scoping."""

    @staticmethod
    def scoped_key(name: str, scope: Optional[str]) -> MetaKey:
        return (scope, name) if scope else name

    # -- allocation -----------------------------------------------------------

    def allocate(self, key: MetaKey, size: Optional[int] = None) -> None:
        self._push_slot(key, Slot(size))

    def deallocate(self, key: MetaKey, size: Optional[int] = None) -> None:
        stack = self._slots.get(key)
        if not stack:
            raise MemorySafetyError(f"deallocating unallocated metadata {key!r}")
        top = stack[-1]
        if size is not None and top.size is not None and top.size != size:
            raise MemorySafetyError(
                f"deallocation size {size} does not match allocated size "
                f"{top.size} for metadata {key!r}"
            )
        self._pop_slot(key)

    # -- access ---------------------------------------------------------------

    def is_allocated(self, key: MetaKey) -> bool:
        return bool(self._slots.get(key))

    def resolve(self, name: str, scope: Optional[str]) -> Optional[MetaKey]:
        """Find the visible key for ``name``: local to ``scope`` first, then
        global."""
        if scope is not None and (scope, name) in self._slots:
            return (scope, name)
        if name in self._slots:
            return name
        return None

    def _top(self, key: MetaKey) -> Slot:
        stack = self._slots.get(key)
        if not stack:
            raise MemorySafetyError(f"access to unallocated metadata {key!r}")
        return stack[-1]

    def read(self, key: MetaKey) -> Term:
        slot = self._top(key)
        if slot.current is None:
            raise MemorySafetyError(
                f"read of allocated but never-assigned metadata {key!r}"
            )
        return slot.current

    def write(self, key: MetaKey, term: Term) -> None:
        self._top(key)  # validates allocation
        self._assign_top(key, term)

    def size_of(self, key: MetaKey) -> Optional[int]:
        return self._top(key).size

    def history(self, key: MetaKey) -> List[Term]:
        return list(self._top(key).values)

    def keys(self) -> List[MetaKey]:
        return list(self._slots)

    def visible_names(self, scope: Optional[str]) -> List[str]:
        """All metadata names visible from ``scope`` (local + global)."""
        names = set()
        for key in self._slots:
            if isinstance(key, tuple):
                if key[0] == scope:
                    names.add(key[1])
            else:
                names.add(key)
        return sorted(names)
