"""SymNet core: symbolic execution of SEFL network models.

This is the paper's primary contribution — a symbolic execution engine whose
state is a *packet* (header variables at bit addresses + a metadata map),
where every execution path corresponds to a packet traversing the network.

Public entry points:

* :class:`repro.core.engine.SymbolicExecutor` — run symbolic execution over a
  :class:`repro.network.Network`;
* :class:`repro.core.state.ExecutionState` — the per-path symbolic state;
* :mod:`repro.core.verification` — reachability, loop detection, invariance,
  header visibility and memory-safety analyses built on the engine.
"""

from repro.core.engine import ExecutionSettings, SymbolicExecutor
from repro.core.errors import (
    MemorySafetyError,
    ModelError,
    SymNetError,
)
from repro.core.paths import ExecutionResult, PathRecord, PathStatus
from repro.core.state import ExecutionState
from repro.core.strategy import (
    BreadthFirstStrategy,
    CoverageOrderedStrategy,
    DepthFirstStrategy,
    ExplorationStrategy,
    STRATEGIES,
    make_strategy,
)
from repro.core.values import SymbolFactory
from repro.core import verification

__all__ = [
    "BreadthFirstStrategy",
    "CoverageOrderedStrategy",
    "DepthFirstStrategy",
    "ExecutionResult",
    "ExecutionSettings",
    "ExecutionState",
    "ExplorationStrategy",
    "MemorySafetyError",
    "ModelError",
    "PathRecord",
    "PathStatus",
    "STRATEGIES",
    "SymNetError",
    "SymbolFactory",
    "SymbolicExecutor",
    "make_strategy",
    "verification",
]
