"""SymNet core: symbolic execution of SEFL network models.

This is the paper's primary contribution — a symbolic execution engine whose
state is a *packet* (header variables at bit addresses + a metadata map),
where every execution path corresponds to a packet traversing the network.

Public entry points:

* :class:`repro.core.engine.SymbolicExecutor` — run symbolic execution over a
  :class:`repro.network.Network`;
* :class:`repro.core.state.ExecutionState` — the per-path symbolic state;
* :mod:`repro.core.checks` — path-level reachability, loop, invariance,
  header-visibility and memory-safety predicates built on the engine
  (:mod:`repro.core.verification` is its deprecated alias);
* :class:`repro.core.campaign.VerificationCampaign` — network-wide campaigns
  fanning one network out across many injection ports (optionally on a
  process pool) and aggregating the :mod:`repro.core.queries` objects.

The declarative front door over all of this lives in :mod:`repro.api`.
"""

from repro.core.campaign import (
    CAMPAIGN_QUERIES,
    CampaignJob,
    CampaignResult,
    JobReport,
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
    execute_job,
    free_input_ports,
)
from repro.core.engine import ExecutionSettings, SymbolicExecutor
from repro.core.errors import (
    MemorySafetyError,
    ModelError,
    SymNetError,
)
from repro.core.paths import ExecutionResult, PathRecord, PathStatus
from repro.core.queries import (
    CampaignStats,
    InvariantReport,
    LoopFinding,
    LoopReport,
    ReachabilityMatrix,
)
from repro.core.state import ExecutionState
from repro.core.strategy import (
    BreadthFirstStrategy,
    CoverageOrderedStrategy,
    DepthFirstStrategy,
    ExplorationStrategy,
    STRATEGIES,
    make_strategy,
)
from repro.core.values import SymbolFactory
from repro.core import checks
from repro.core import verification

__all__ = [
    "BreadthFirstStrategy",
    "CAMPAIGN_QUERIES",
    "CampaignJob",
    "CampaignResult",
    "CampaignStats",
    "CoverageOrderedStrategy",
    "DepthFirstStrategy",
    "ExecutionResult",
    "ExecutionSettings",
    "ExecutionState",
    "ExplorationStrategy",
    "InvariantReport",
    "JobReport",
    "LoopFinding",
    "LoopReport",
    "MemorySafetyError",
    "ModelError",
    "NetworkSource",
    "PathRecord",
    "PathStatus",
    "ReachabilityMatrix",
    "STRATEGIES",
    "SymNetError",
    "SymbolFactory",
    "SymbolicExecutor",
    "VerificationCampaign",
    "checks",
    "clear_runtime_cache",
    "execute_job",
    "free_input_ports",
    "make_strategy",
    "verification",
]
