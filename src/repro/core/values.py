"""Symbolic value management.

Values manipulated by the engine are terms of the constraint solver
(:mod:`repro.solver.ast`): concrete integers become :class:`Const`, fresh
symbolic values become :class:`Var`, and SEFL's ``+`` / ``-`` become
``Add`` / ``Sub``.  The :class:`SymbolFactory` hands out uniquely named
solver variables — the paper's "each value has a unique identifier".
"""

from __future__ import annotations

from typing import Optional, Union

from repro.solver.ast import Add, Const, Sub, Term, Var


class SymbolFactory:
    """Produces uniquely named symbolic variables."""

    def __init__(self, prefix: str = "s") -> None:
        self._prefix = prefix
        self._counter = 0

    def fresh(self, label: str = "sym", width: int = 32) -> Var:
        """Create a fresh symbolic variable labelled for readability."""
        self._counter += 1
        safe_label = label.replace(" ", "_") or "sym"
        return Var(f"{self._prefix}{self._counter}_{safe_label}", width)

    @property
    def count(self) -> int:
        """Number of symbols created so far (instrumentation)."""
        return self._counter


def as_term(value: Union[Term, int]) -> Term:
    """Coerce a Python integer into a solver constant."""
    if isinstance(value, int):
        return Const(value)
    return value


def term_is_concrete(term: Term) -> bool:
    """True if ``term`` contains no symbolic variables."""
    if isinstance(term, Const):
        return True
    if isinstance(term, Var):
        return False
    if isinstance(term, (Add, Sub)):
        return term_is_concrete(term.left) and term_is_concrete(term.right)
    raise TypeError(f"not a term: {term!r}")


def concrete_value(term: Term) -> Optional[int]:
    """Evaluate ``term`` if it is fully concrete, else return ``None``."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return None
    if isinstance(term, Add):
        left = concrete_value(term.left)
        right = concrete_value(term.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(term, Sub):
        left = concrete_value(term.left)
        right = concrete_value(term.right)
        if left is None or right is None:
            return None
        return left - right
    raise TypeError(f"not a term: {term!r}")


def term_to_string(term: Term) -> str:
    """Human-readable rendering used in path reports."""
    if isinstance(term, Const):
        return str(term.value)
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Add):
        return f"({term_to_string(term.left)} + {term_to_string(term.right)})"
    if isinstance(term, Sub):
        return f"({term_to_string(term.left)} - {term_to_string(term.right)})"
    return repr(term)
