"""The SymNet symbolic execution engine.

The engine injects a symbolic packet into an input port of a network element
and propagates it through the topology, executing the SEFL program attached
to every port it crosses.  Each feasible combination of branch decisions
becomes one execution path; infeasible branches are discharged by the
constraint solver (the role Z3 plays in the paper).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.errors import MemorySafetyError, ModelError
from repro.core.paths import ExecutionResult, PathRecord, PathStatus
from repro.core.state import ExecutionState
from repro.core.strategy import ExplorationStrategy, make_strategy
from repro.core.values import SymbolFactory, concrete_value
from repro.network.element import NetworkElement
from repro.network.ports import PortId
from repro.network.topology import Network
from repro.sefl import expressions as sx
from repro.sefl import instructions as si
from repro.sefl.fields import HeaderField, TagOffset
from repro.solver import ast as sa
from repro.solver.ast import Const, Formula, Term
from repro.solver.incremental import IncrementalSolver
from repro.solver.solver import Solver
from repro.solver.verdict_cache import VerdictCache


@dataclass
class ExecutionSettings:
    """Tunables for a symbolic execution run."""

    max_hops: int = 128
    detect_loops: bool = True
    record_failed_paths: bool = True
    record_infeasible_branches: bool = False
    check_constraints_eagerly: bool = True
    max_paths: int = 1_000_000
    #: Worklist discipline: a name registered in
    #: :data:`repro.core.strategy.STRATEGIES` ("dfs", "bfs", "coverage") or a
    #: zero-argument factory returning an ExplorationStrategy.
    strategy: Union[str, Callable[[], ExplorationStrategy]] = "dfs"
    #: Route feasibility checks through the incremental solver (push/pop
    #: scopes + per-path propagated domains + memoized full checks).  Off,
    #: every check re-solves the whole path conjunction from scratch.
    use_incremental_solver: bool = True


@dataclass
class _Outcome:
    """Intermediate result of executing a port program on one state."""

    state: ExecutionState
    forwards: List[str] = field(default_factory=list)
    done: bool = False


class SymbolicExecutor:
    """Symbolic execution of SEFL models over a :class:`Network`."""

    def __init__(
        self,
        network: Network,
        solver: Optional[Solver] = None,
        settings: Optional[ExecutionSettings] = None,
        symbols: Optional[SymbolFactory] = None,
        verdict_cache: Optional["VerdictCache"] = None,
        shared_cache: Optional[object] = None,
    ) -> None:
        self.network = network
        self.solver = solver if solver is not None else Solver()
        self.settings = settings if settings is not None else ExecutionSettings()
        self.symbols = symbols if symbols is not None else SymbolFactory()
        # Shares the base solver (and its stats); the verdict cache persists
        # across inject() calls so repeated analyses reuse verdicts.  Pass
        # ``verdict_cache`` to share one cache across executors (campaign
        # workers do, per-process) and ``shared_cache`` to add a
        # cross-process tier (a Manager dict; see solver/verdict_cache.py).
        self.incremental = IncrementalSolver(
            self.solver, verdict_cache=verdict_cache, shared_cache=shared_cache
        )

    # ------------------------------------------------------------------ public

    def inject(
        self,
        packet_program: si.Instruction,
        element: str,
        port: str = "in0",
        initial_state: Optional[ExecutionState] = None,
    ) -> ExecutionResult:
        """Build a packet with ``packet_program`` and inject it at
        ``element:port``, returning every explored path."""
        start = time.perf_counter()
        stats = self.solver.stats
        solver_calls_before = stats.calls
        solver_time_before = stats.time_seconds
        fast_paths_before = stats.fast_paths
        cache_hits_before = stats.cache_hits
        cache_misses_before = stats.cache_misses
        shared_hits_before = stats.shared_cache_hits
        shared_trips_before = stats.shared_round_trips
        publish_batches_before = stats.shared_publish_batches
        publish_entries_before = stats.shared_publish_entries
        degraded_before = stats.degraded_operations

        result = ExecutionResult(injected_at=PortId(element, port))
        state = initial_state if initial_state is not None else ExecutionState(self.symbols)
        if not self.settings.use_incremental_solver:
            # A reused initial_state may carry a context from an earlier
            # incremental run; drop it so this run really re-solves from
            # scratch (descendant states clone from here).
            state.solver_context = None
        elif (
            state.solver_context is None
            or state.solver_context.owner is not self.incremental
        ):
            # No context yet, or one bound to a different executor's solver
            # (reused state): rebuild from the accumulated constraints so
            # checks and stats go through *this* executor.
            context = self.incremental.context()
            for existing in state.constraints:
                context.assume(existing)
            state.solver_context = context

        # The injection program runs outside any element; it must not forward.
        injected = self._run_program(packet_program, state, element=None)
        frontier = make_strategy(self.settings.strategy)
        for outcome in injected:
            if not outcome.state.is_alive:
                self._record(result, outcome.state, None)
                continue
            if outcome.forwards:
                raise ModelError("packet construction programs must not forward")
            frontier.push((outcome.state, element, port))

        while frontier:
            if len(result.paths) >= self.settings.max_paths:
                result.truncated = True
                break
            current, element_name, in_port = frontier.pop()
            self._step(current, element_name, in_port, frontier, result)

        # Publish any verdicts still buffered in a batched shared tier
        # *before* the stats deltas are read, so the run's own report sees
        # its own flushes (and another worker never waits a whole extra job
        # for them).  A broken proxy only loses the shared tier.
        shared = self.incremental.shared
        if shared is not None and hasattr(shared, "flush"):
            # ShardedTier.flush never raises (it degrades itself and counts
            # the failure); the guard covers duck-typed tiers that do.
            try:
                shared.flush()
            except Exception:
                self.incremental.shared = None
                stats.record_degraded_operation()

        result.elapsed_seconds = time.perf_counter() - start
        result.solver_calls = stats.calls - solver_calls_before
        result.solver_time_seconds = stats.time_seconds - solver_time_before
        result.solver_fast_paths = stats.fast_paths - fast_paths_before
        result.solver_cache_hits = stats.cache_hits - cache_hits_before
        result.solver_cache_misses = stats.cache_misses - cache_misses_before
        result.solver_shared_cache_hits = (
            stats.shared_cache_hits - shared_hits_before
        )
        result.solver_shared_round_trips = (
            stats.shared_round_trips - shared_trips_before
        )
        result.solver_shared_publish_batches = (
            stats.shared_publish_batches - publish_batches_before
        )
        result.solver_shared_publish_entries = (
            stats.shared_publish_entries - publish_entries_before
        )
        result.solver_degraded_operations = (
            stats.degraded_operations - degraded_before
        )
        return result

    # ------------------------------------------------------------ propagation

    def _step(
        self,
        state: ExecutionState,
        element_name: str,
        in_port: str,
        frontier: ExplorationStrategy,
        result: ExecutionResult,
    ) -> None:
        element = self.network.element(element_name)
        port_id = PortId(element_name, in_port)
        state.current_scope = element_name
        state.record_port(str(port_id))
        state.hop_count += 1

        if state.hop_count > self.settings.max_hops:
            state.status = PathStatus.LOOP
            state.stop_reason = f"hop limit ({self.settings.max_hops}) exceeded"
            self._record(result, state, port_id)
            return

        if self.settings.detect_loops and self._detect_loop(state, str(port_id)):
            state.status = PathStatus.LOOP
            state.stop_reason = f"loop detected at {port_id}"
            self._record(result, state, port_id)
            return
        state.snapshot_port(str(port_id))

        outcomes = self._run_program(element.input_program(in_port), state, element)
        for outcome in outcomes:
            if not outcome.state.is_alive:
                self._record(result, outcome.state, port_id)
                continue
            if not outcome.forwards:
                outcome.state.status = PathStatus.DROPPED
                outcome.state.stop_reason = (
                    outcome.state.stop_reason or f"no forward from {port_id}"
                )
                self._record(result, outcome.state, port_id)
                continue
            for index, out_port in enumerate(outcome.forwards):
                branch_state = (
                    outcome.state
                    if index == len(outcome.forwards) - 1
                    else outcome.state.clone()
                )
                self._emit(branch_state, element, out_port, frontier, result)

    def _emit(
        self,
        state: ExecutionState,
        element: NetworkElement,
        out_port: str,
        frontier: ExplorationStrategy,
        result: ExecutionResult,
    ) -> None:
        """Run the output-port program and follow the outgoing link."""
        out_id = PortId(element.name, out_port)
        state.record_port(str(out_id))
        outcomes = self._run_program(element.output_program(out_port), state, element)
        for outcome in outcomes:
            if not outcome.state.is_alive:
                self._record(result, outcome.state, out_id)
                continue
            if outcome.forwards:
                raise ModelError(
                    f"output port program at {out_id} attempted to forward"
                )
            destination = self.network.link_from(element.name, out_port)
            if destination is None:
                outcome.state.status = PathStatus.DELIVERED
                outcome.state.stop_reason = f"delivered at {out_id} (no outgoing link)"
                self._record(result, outcome.state, out_id)
            elif not self.network.has_element(destination.element):
                # A dangling link (typo'd element in the topology file, kept
                # by the permissive parser so Network.validate() can report
                # it): terminate explicitly instead of crashing mid-run.
                outcome.state.status = PathStatus.DROPPED
                outcome.state.stop_reason = (
                    f"dangling link {out_id} -> {destination} (unknown element)"
                )
                self._record(result, outcome.state, out_id)
            else:
                frontier.push(
                    (outcome.state, destination.element, destination.port)
                )

    def _detect_loop(self, state: ExecutionState, port_key: str) -> bool:
        """Paper §6: a loop exists when the new state at a previously-visited
        port contains all values allowed by the old state (solve ``old ∧ ¬new``
        and look for a counterexample)."""
        snapshots = state.snapshots_for(port_key)
        if not snapshots:
            return False
        constraints = list(state.constraints)
        new_formula = None
        for snapshot in snapshots:
            # Structural fast path.  Constraints are append-only along a
            # path, so the snapshot conjunction is a prefix of the current
            # one: new = old ∧ suffix.  If every suffix conjunct already
            # appears (structurally) in the old set, old implies new, hence
            # old ∧ ¬new is unsat — a loop — with no solver work.  The
            # common case (pure forwarding loops) has an empty suffix.
            suffix = constraints[snapshot.constraint_count:]
            if all(snapshot.contains(formula) for formula in suffix):
                return True
            if new_formula is None:
                new_formula = sa.conjoin(constraints)
            old_formula = sa.conjoin(list(snapshot.constraints))
            query = sa.And(old_formula, sa.Not(new_formula))
            if self.settings.use_incremental_solver:
                # Loop checks at symmetric ports differ only in symbol
                # names, so the canonical verdict cache shares them across
                # paths — and, in campaigns, across jobs.
                witness = self.incremental.check_cached(
                    sa.split_conjuncts(query)
                )
            else:
                witness = self.solver.check(query)
            if witness.is_unsat:
                return True
        return False

    def _record(
        self,
        result: ExecutionResult,
        state: ExecutionState,
        port: Optional[PortId],
    ) -> None:
        """Append a terminated state to the result, honouring record settings."""
        # The context only serves feasibility checks on live paths; drop it
        # so recorded results don't retain the solved-form duplicates of
        # every path's constraints.
        state.solver_context = None
        if state.status == PathStatus.INFEASIBLE:
            if not (
                self.settings.record_infeasible_branches
                and self.settings.record_failed_paths
            ):
                return
        elif state.status == PathStatus.FAILED:
            if not self.settings.record_failed_paths:
                return
        result.add(
            PathRecord(
                state=state,
                status=state.status,
                stop_reason=state.stop_reason,
                last_port=port,
            )
        )

    # -------------------------------------------------------------- execution

    def _run_program(
        self,
        program: si.Instruction,
        state: ExecutionState,
        element: Optional[NetworkElement],
    ) -> List[_Outcome]:
        """Execute ``program`` on ``state`` and return all resulting outcomes."""
        return self._execute(program, _Outcome(state), element)

    def _execute(
        self,
        instruction: si.Instruction,
        outcome: _Outcome,
        element: Optional[NetworkElement],
    ) -> List[_Outcome]:
        state = outcome.state
        if outcome.done or not state.is_alive:
            return [outcome]

        if isinstance(instruction, si.NoOp):
            return [outcome]

        if isinstance(instruction, si.InstructionBlock):
            pending = [outcome]
            for child in instruction.instructions:
                next_pending: List[_Outcome] = []
                for item in pending:
                    if item.done or not item.state.is_alive:
                        next_pending.append(item)
                    else:
                        next_pending.extend(self._execute(child, item, element))
                pending = next_pending
            return pending

        state.record_instruction(self._describe(instruction))

        try:
            return self._execute_simple(instruction, outcome, element)
        except MemorySafetyError as exc:
            state.fail(f"memory safety violation: {exc}")
            outcome.done = True
            return [outcome]

    def _execute_simple(
        self,
        instruction: si.Instruction,
        outcome: _Outcome,
        element: Optional[NetworkElement],
    ) -> List[_Outcome]:
        state = outcome.state

        if isinstance(instruction, si.Allocate):
            variable = instruction.variable
            if isinstance(variable, str):
                state.allocate_metadata(
                    variable,
                    instruction.size,
                    local=instruction.visibility == si.LOCAL,
                )
            else:
                if instruction.size is None:
                    raise MemorySafetyError(
                        f"header allocation of {state.describe_variable(variable)} "
                        "requires an explicit size"
                    )
                state.allocate_header(variable, instruction.size)
            return [outcome]

        if isinstance(instruction, si.Deallocate):
            variable = instruction.variable
            if isinstance(variable, str):
                state.deallocate_metadata(variable, instruction.size)
            else:
                state.deallocate_header(variable, instruction.size)
            return [outcome]

        if isinstance(instruction, si.Assign):
            term = self._eval(instruction.expression, state)
            state.write_variable(instruction.variable, term)
            return [outcome]

        if isinstance(instruction, si.CreateTag):
            state.create_tag(instruction.name, self._eval_address(instruction.value, state))
            return [outcome]

        if isinstance(instruction, si.DestroyTag):
            state.destroy_tag(instruction.name)
            return [outcome]

        if isinstance(instruction, si.Constrain):
            formula = self._condition(instruction.condition, state)
            self._assume(state, formula)
            if self.settings.check_constraints_eagerly:
                if self._check_state(state).is_unsat:
                    state.fail(
                        f"constraint unsatisfiable: {self._describe(instruction)}"
                    )
                    outcome.done = True
            return [outcome]

        if isinstance(instruction, si.Fail):
            state.fail(instruction.message)
            outcome.done = True
            return [outcome]

        if isinstance(instruction, si.If):
            return self._execute_if(instruction, outcome, element)

        if isinstance(instruction, si.For):
            return self._execute_for(instruction, outcome, element)

        if isinstance(instruction, si.Forward):
            port = self._resolve_port(instruction.port, element)
            outcome.forwards = [port]
            outcome.done = True
            return [outcome]

        if isinstance(instruction, si.Fork):
            ports = [self._resolve_port(p, element) for p in instruction.ports]
            if not ports:
                # A Fork with no output ports must not silently vanish the
                # state: terminate it as an explicit drop.
                state.status = PathStatus.DROPPED
                state.stop_reason = "Fork with no output ports"
                outcome.done = True
                return [outcome]
            results: List[_Outcome] = []
            for index, port in enumerate(ports):
                branch_state = state if index == len(ports) - 1 else state.clone()
                results.append(_Outcome(branch_state, forwards=[port], done=True))
            return results

        raise ModelError(f"unknown instruction {instruction!r}")

    def _execute_if(
        self,
        instruction: si.If,
        outcome: _Outcome,
        element: Optional[NetworkElement],
    ) -> List[_Outcome]:
        state = outcome.state
        condition = instruction.condition
        if isinstance(condition, si.Constrain):
            condition = condition.condition
        formula = self._condition(condition, state)
        negated = sa.negate(formula)

        # Probe both branches *before* cloning so an infeasible side costs a
        # push/check/pop instead of a full state copy.
        then_feasible = self._branch_feasible(state, formula)
        else_feasible = self._branch_feasible(state, negated)

        record_infeasible = self.settings.record_infeasible_branches
        need_then = then_feasible or record_infeasible
        need_else = else_feasible or record_infeasible
        if not need_then and not need_else:
            # Both branches proved unsatisfiable (possible when an earlier
            # eager check returned "unknown"): terminate the path instead of
            # silently vanishing it — same defect class as the empty Fork.
            state.fail("constraint unsatisfiable: both If branches infeasible")
            return [_Outcome(state, done=True)]
        then_state: Optional[ExecutionState] = state if need_then else None
        else_state: Optional[ExecutionState] = None
        if need_else:
            else_state = state.clone() if need_then else state

        results: List[_Outcome] = []
        if then_state is not None:
            self._assume(then_state, formula)
            if then_feasible:
                results.extend(
                    self._execute(
                        instruction.then_branch, _Outcome(then_state), element
                    )
                )
            else:
                then_state.mark_infeasible("infeasible If branch (then)")
                results.append(_Outcome(then_state, done=True))
        if else_state is not None:
            self._assume(else_state, negated)
            if else_feasible:
                results.extend(
                    self._execute(
                        instruction.else_branch, _Outcome(else_state), element
                    )
                )
            else:
                else_state.mark_infeasible("infeasible If branch (else)")
                results.append(_Outcome(else_state, done=True))
        return results

    def _execute_for(
        self,
        instruction: si.For,
        outcome: _Outcome,
        element: Optional[NetworkElement],
    ) -> List[_Outcome]:
        state = outcome.state
        if not callable(instruction.body):
            raise ModelError("For body must be a callable taking the matched key")
        pattern = re.compile(instruction.pattern)
        names = [
            name
            for name in state.metadata.visible_names(state.current_scope)
            if pattern.fullmatch(name)
        ]
        pending = [outcome]
        for name in names:
            body = instruction.body(name)
            next_pending: List[_Outcome] = []
            for item in pending:
                if item.done or not item.state.is_alive:
                    next_pending.append(item)
                else:
                    next_pending.extend(self._execute(body, item, element))
            pending = next_pending
        return pending

    # ------------------------------------------------------------- constraints

    def _assume(self, state: ExecutionState, formula: Formula) -> None:
        """Permanently add ``formula`` to the path, keeping the state's
        incremental solver context (if any) in sync."""
        state.add_constraint(formula)
        if state.solver_context is not None:
            state.solver_context.assume(formula)

    def _check_state(self, state: ExecutionState):
        """Satisfiability of the state's accumulated constraints."""
        if state.solver_context is not None:
            return state.solver_context.check()
        return self.solver.check(list(state.constraints))

    def _branch_feasible(self, state: ExecutionState, formula: Formula) -> bool:
        """Would adding ``formula`` keep the path feasible?  Uses a
        speculative push/assume/check/pop scope when incremental solving is
        on; falls back to a from-scratch solve of the extended conjunction."""
        if not self.settings.check_constraints_eagerly:
            return True
        context = state.solver_context
        if context is not None:
            context.push()
            try:
                context.assume(formula)
                verdict = context.check()
            finally:
                context.pop()
            return not verdict.is_unsat
        query = list(state.constraints)
        query.append(formula)
        return not self.solver.check(query).is_unsat

    # -------------------------------------------------------------- evaluation

    def _eval(self, expression, state: ExecutionState) -> Term:
        """Evaluate a SEFL expression to a solver term."""
        if isinstance(expression, bool):
            raise ModelError(f"booleans are not SEFL values: {expression!r}")
        if isinstance(expression, int):
            return Const(expression)
        if isinstance(expression, str):
            return state.read_metadata(expression)
        if isinstance(expression, (HeaderField, TagOffset)):
            return state.read_header(expression)
        if isinstance(expression, sx.ConstantValue):
            return Const(expression.value)
        if isinstance(expression, sx.SymbolicValue):
            return self.symbols.fresh(expression.label, expression.width)
        if isinstance(expression, sx.Reference):
            return state.read_variable(expression.variable)
        if isinstance(expression, sx.Plus):
            return sa.Add(self._eval(expression.left, state), self._eval(expression.right, state))
        if isinstance(expression, sx.Minus):
            return sa.Sub(self._eval(expression.left, state), self._eval(expression.right, state))
        raise ModelError(f"cannot evaluate expression {expression!r}")

    def _eval_address(self, value, state: ExecutionState) -> int:
        """Evaluate a CreateTag value to a concrete bit address."""
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        if isinstance(value, (HeaderField, TagOffset)):
            return state.resolve_address(value)
        term = self._eval(value, state)
        concrete = concrete_value(term)
        if concrete is None:
            raise MemorySafetyError(
                "tag values must evaluate to concrete integers"
            )
        return concrete

    def _condition(self, condition: sx.Condition, state: ExecutionState) -> Formula:
        """Translate a SEFL condition into a solver formula."""
        if isinstance(condition, sx.Eq):
            return sa.Eq(self._eval(condition.left, state), self._eval(condition.right, state))
        if isinstance(condition, sx.Ne):
            return sa.Ne(self._eval(condition.left, state), self._eval(condition.right, state))
        if isinstance(condition, sx.Lt):
            return sa.Lt(self._eval(condition.left, state), self._eval(condition.right, state))
        if isinstance(condition, sx.Le):
            return sa.Le(self._eval(condition.left, state), self._eval(condition.right, state))
        if isinstance(condition, sx.Gt):
            return sa.Gt(self._eval(condition.left, state), self._eval(condition.right, state))
        if isinstance(condition, sx.Ge):
            return sa.Ge(self._eval(condition.left, state), self._eval(condition.right, state))
        if isinstance(condition, sx.OneOf):
            return sa.Member(self._eval(condition.expression, state), condition.values)
        if isinstance(condition, sx.And):
            return sa.conjoin([self._condition(op, state) for op in condition.operands])
        if isinstance(condition, sx.Or):
            return sa.disjoin([self._condition(op, state) for op in condition.operands])
        if isinstance(condition, sx.Not):
            return sa.Not(self._condition(condition.operand, state))
        raise ModelError(f"cannot translate condition {condition!r}")

    # ---------------------------------------------------------------- helpers

    @staticmethod
    def _resolve_port(port, element: Optional[NetworkElement]) -> str:
        if element is None:
            raise ModelError("Forward/Fork outside a network element")
        return element.resolve_output_port(port)

    @staticmethod
    def _describe(instruction: si.Instruction) -> str:
        name = type(instruction).__name__
        if isinstance(instruction, si.Constrain):
            return f"Constrain({instruction.condition!r})"
        if isinstance(instruction, si.Assign):
            return f"Assign({instruction.variable!r})"
        if isinstance(instruction, si.Forward):
            return f"Forward({instruction.port!r})"
        if isinstance(instruction, si.Fork):
            return f"Fork{instruction.ports!r}"
        if isinstance(instruction, si.Fail):
            return f"Fail({instruction.message!r})"
        return name
