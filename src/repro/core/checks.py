"""Path-level verification checks built on top of symbolic execution (§6).

These are the primitive predicates every higher-level query bottoms out in.
They operate on a single :class:`~repro.core.paths.ExecutionResult` or
:class:`~repro.core.paths.PathRecord`; the network-wide, multi-injection
view lives in :mod:`repro.api` (the ``NetworkModel``/``Query`` session API),
which calls into this module from inside campaign workers.

* **Reachability** — inject a symbolic packet and inspect which paths reach a
  port, what constraints they carry and what the headers look like there.
* **Loop detection** — compare the state at a revisited port with the states
  recorded at previous visits; a loop exists when the new state covers every
  packet admitted by an old state.
* **Invariants** — a header field is invariant along a path when its final
  value provably equals the value it had when the packet was injected.
* **Header visibility** — whether the value currently readable at some point
  is the same symbol the source wrote (e.g. across an encrypted tunnel).
* **Header memory safety** — free, by construction: violations surface as
  failed paths whose ``stop_reason`` starts with ``"memory safety"``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.core.paths import ExecutionResult, PathRecord
from repro.core.state import ExecutionState
from repro.core.values import concrete_value
from repro.sefl.fields import VariableLike
from repro.solver import ast as sa
from repro.solver.ast import Formula, Term
from repro.solver.solver import Solver


# ---------------------------------------------------------------------------
# Reachability
# ---------------------------------------------------------------------------


def reachable_paths(
    result: ExecutionResult, element: str, port: Optional[str] = None
) -> List[PathRecord]:
    """Delivered paths terminating at ``element`` (optionally a given port)."""
    return result.reaching(element, port)


def is_reachable(
    result: ExecutionResult, element: str, port: Optional[str] = None
) -> bool:
    return result.is_reachable(element, port)


def admitted_values(
    path: PathRecord,
    variable: VariableLike,
    solver: Optional[Solver] = None,
    samples: int = 1,
) -> List[int]:
    """Concrete example values the field can take on this path.

    Uses the solver to produce up to ``samples`` distinct witnesses; useful
    for answering "which packets are allowed here?".
    """
    solver = solver or Solver()
    term = path.state.read_variable(variable)
    constraints: List[Formula] = list(path.constraints)
    found: List[int] = []
    probe = solver  # readable alias
    for _ in range(samples):
        fresh = sa.Var(f"__probe_{len(found)}", 64)
        query = constraints + [sa.Eq(fresh, term)] + [
            sa.Ne(fresh, sa.Const(v)) for v in found
        ]
        model = probe.get_model(query)
        if model is None or fresh.name not in model:
            break
        found.append(model[fresh.name])
    return found


# ---------------------------------------------------------------------------
# State subsumption / loop detection
# ---------------------------------------------------------------------------


def state_subsumed(
    old_constraints: Sequence[Formula],
    new_constraints: Sequence[Formula],
    solver: Optional[Solver] = None,
) -> bool:
    """True when every packet admitted by the old state is admitted by the
    new one (Figure 5(d): the loop case).

    Implemented exactly as in the paper: ask the solver for a packet that
    satisfies the old constraints but not the new ones; if none exists, the
    new state covers the old state.
    """
    solver = solver or Solver()
    old_formula = sa.conjoin(list(old_constraints))
    new_formula = sa.conjoin(list(new_constraints))
    witness = solver.check(sa.And(old_formula, sa.Not(new_formula)))
    return witness.is_unsat


def find_loops(result: ExecutionResult) -> List[PathRecord]:
    """Paths the engine terminated because they revisited a port with a
    subsuming state (or exceeded the hop budget)."""
    return result.loops()


# ---------------------------------------------------------------------------
# Invariance and visibility
# ---------------------------------------------------------------------------


def _terms_equal_under(
    constraints: Sequence[Formula],
    left: Term,
    right: Term,
    solver: Optional[Solver] = None,
) -> bool:
    """True if ``left == right`` holds on every packet satisfying the path
    constraints."""
    if left == right:
        return True
    solver = solver or Solver()
    query = list(constraints) + [sa.Ne(left, right)]
    return solver.check(query).is_unsat


def field_invariant(
    path: PathRecord,
    variable: VariableLike,
    solver: Optional[Solver] = None,
) -> bool:
    """True when the field's value at the end of the path provably equals the
    value it was given when first assigned (§6, "Invariants")."""
    history = path.state.variable_history(variable)
    if len(history) <= 1:
        return True
    return _terms_equal_under(path.constraints, history[0], history[-1], solver)


def values_equal(
    path: PathRecord,
    variable_a: VariableLike,
    variable_b: VariableLike,
    solver: Optional[Solver] = None,
) -> bool:
    """True when two fields provably hold the same value at the end of the path."""
    term_a = path.state.read_variable(variable_a)
    term_b = path.state.read_variable(variable_b)
    return _terms_equal_under(path.constraints, term_a, term_b, solver)


def header_visible(
    path: PathRecord,
    variable: VariableLike,
    original: Term,
    solver: Optional[Solver] = None,
) -> bool:
    """True when the value currently readable at ``variable`` is provably the
    same as ``original`` (the symbol written by the source).

    This is the "header visibility" test of §6: it distinguishes a field that
    still carries the sender's symbol from one that was overwritten (e.g. by
    encryption or NAT) with a fresh symbol.
    """
    current = path.state.read_variable(variable)
    return _terms_equal_under(path.constraints, current, original, solver)


def field_concrete_value(path: PathRecord, variable: VariableLike) -> Optional[int]:
    """The concrete value of a field on this path, if it is fully concrete."""
    return concrete_value(path.state.read_variable(variable))


# ---------------------------------------------------------------------------
# Memory safety
# ---------------------------------------------------------------------------


def memory_safety_violations(result: ExecutionResult) -> List[PathRecord]:
    """Failed paths caused by header memory-safety violations."""
    return [
        record
        for record in result.failed()
        if record.stop_reason.startswith("memory safety")
    ]


def constraint_violations(result: ExecutionResult) -> List[PathRecord]:
    """Failed paths caused by unsatisfiable constraints (filtered packets)."""
    return [
        record
        for record in result.failed()
        if record.stop_reason.startswith("constraint unsatisfiable")
    ]
