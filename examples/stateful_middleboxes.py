"""Stateful middleboxes without state explosion (§7 of the paper).

The example chains a dynamic NAT and a stateful firewall, bounces the
traffic back with an IP mirror (standing in for the remote server), and
shows that:

* outgoing packets leave with the NAT's public address and a fresh mapped
  port constrained to the NAT's port range;
* return traffic is only admitted when it matches the recorded flow, and the
  client sees its original addresses restored;
* unsolicited inbound traffic is dropped.

Run with::

    python examples/stateful_middleboxes.py
"""

from repro import Network, SymbolicExecutor, models
from repro.api import checks as V
from repro.models import build_nat, build_stateful_firewall, build_ip_mirror
from repro.sefl import IpDst, IpSrc, TcpDst, TcpSrc, number_to_ip


def build_network() -> Network:
    network = Network("stateful")
    network.add_elements(
        build_stateful_firewall("fw"),
        build_nat("nat", public_address="141.85.37.1"),
        build_ip_mirror("server"),
    )
    # inside -> firewall -> NAT -> server (mirror) -> NAT -> firewall -> inside
    network.add_link(("fw", "out0"), ("nat", "in0"))
    network.add_link(("nat", "out0"), ("server", "in0"))
    network.add_link(("server", "out0"), ("nat", "in1"))
    network.add_link(("nat", "out1"), ("fw", "in1"))
    return network


def main() -> None:
    network = build_network()
    executor = SymbolicExecutor(network)

    # A fully symbolic TCP packet from the inside network.
    result = executor.inject(models.symbolic_tcp_packet(), "fw", "in0")
    print(f"outbound + return analysis: {result.summary_counts()}")

    # What the server sees.  The mapped source port is the value TcpSrc held
    # when the packet crossed the NAT (the second entry in its history: the
    # original client port, then the NAT's fresh mapping).
    from repro.solver.ast import Const, Ge, Gt, Le, Lt
    from repro.solver.solver import Solver

    at_server = [p for p in result.paths if p.visited("server")][0]
    print("\nwhat the server sees:")
    print(f"  source address rewritten: {not V.field_invariant(at_server, IpSrc)}")
    mapped_port = at_server.state.variable_history(TcpSrc)[1]
    solver = Solver()
    below = solver.check(list(at_server.constraints) + [Lt(mapped_port, Const(1024))])
    above = solver.check(list(at_server.constraints) + [Gt(mapped_port, Const(65535))])
    print(
        "  mapped source port provably inside the NAT range 1024-65535: "
        f"{below.is_unsat and above.is_unsat}"
    )

    # The full round trip: the client's view of the reply.
    returned = result.reaching("fw", "out1")
    print(f"\nreturn traffic admitted on {len(returned)} path(s)")
    reply = returned[0]
    original_source = reply.state.variable_history(IpSrc)[0]
    print(
        "  reply destination equals the client's original address: "
        f"{V.header_visible(reply, IpDst, original_source)}"
    )

    # Unsolicited traffic from the outside is dropped by the NAT/firewall.
    unsolicited = executor.inject(models.symbolic_tcp_packet(), "nat", "in1")
    print(
        "\nunsolicited inbound reaches the inside network: "
        f"{unsolicited.is_reachable('fw', 'out1')}"
    )


if __name__ == "__main__":
    main()
