"""The session API: ask network-wide questions through one front door.

Three ways to build a :class:`~repro.api.NetworkModel` — from a registered
workload, from an in-process network, and (commented, since it needs files
on disk) from a §7.1 snapshot directory — and one way to ask questions: a
batch of declarative queries compiled onto a single shared execution plan.
Queries over the same injection ports share one symbolic execution, so the
whole batch below costs one engine job per injection port.

Run with::

    python examples/network_queries.py
"""

from repro import Network, NetworkElement
from repro.api import (
    AdmittedValues,
    All,
    ForAllPairs,
    HeaderVisible,
    Invariant,
    Loop,
    NetworkModel,
    Not,
    Reach,
)
from repro.sefl import Assign, Constrain, Eq, Forward, If, InstructionBlock, IpDst, IpSrc, TcpDst, ip_to_number


def main() -> None:
    # --- a model over a registered workload -----------------------------------
    model = NetworkModel.from_workload(
        "department",
        access_switches=4, hosts_per_switch=2, mac_entries=300, extra_routes=20,
    )
    print(f"model: {model.describe()}")
    print(f"default injection ports: {model.injection_ports()}\n")

    result = model.query(
        ForAllPairs(Reach),      # the all-pairs reachability matrix
        Loop(),                  # is the whole network loop-free?
        Invariant("IpDst"),      # does IpDst survive every delivered path?
    )
    matrix = result["forall_pairs(reach)"]
    print(f"one plan, {result.plan.job_count} engine jobs, {len(result)} queries:")
    print(f"  reachable pairs : {matrix.evidence['reachable_pairs']}")
    print(f"  loop-free       : {result['loop()'].holds}")
    print(f"  IpDst invariant : {result['invariant(IpDst)'].holds}")
    print(f"  plan fingerprint: {result.plan.fingerprint()[:16]}\n")

    # --- a model over an in-process network -----------------------------------
    network = Network("dmz")
    nat = NetworkElement("nat", ["in0"], ["out0"])
    nat.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(Eq(TcpDst, 443)),
            If(
                Eq(IpDst, ip_to_number("10.0.0.80")),
                InstructionBlock(
                    Assign(IpDst, ip_to_number("192.168.0.80")), Forward("out0")
                ),
                Forward("out0"),
            ),
        ),
    )
    network.add_element(nat)
    dmz = NetworkModel.from_network(network)

    answers = dmz.query(
        Reach("nat:in0", "nat:out0"),
        All(Loop(), Not(Reach("nat:in0", "nowhere"))),
        HeaderVisible("IpSrc", at="nat:out0"),
        HeaderVisible("IpDst", at="nat:out0"),
        AdmittedValues("TcpDst", at="nat:out0", samples=3),
    )
    for answer in answers:
        verdict = "?" if answer.holds is None else answer.holds
        print(f"{answer.query:48s} -> {verdict}")
    values = answers["admitted_values(TcpDst, at=nat:out0, samples=3)"]
    print(f"  admitted TcpDst values at nat:out0: {values.value['values']}")

    # --- a model over a snapshot directory ------------------------------------
    # NetworkModel.from_directory("NETWORK_DIR") works the same way, and the
    # CLI speaks the identical textual query forms:
    #   python -m repro.cli query NETWORK_DIR "forall_pairs(reach)" "loop()"


if __name__ == "__main__":
    main()
