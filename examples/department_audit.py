"""Audit the CS department network (§8.5 of the paper, Figure 11).

The script generates the department topology (access switches, aggregation,
the M2 master switch, the ASA appliance, the M1 router and the cluster),
then runs the checks the paper describes:

* office → Internet reachability, and what the ASA silently does to TCP
  options on the way (SACK disabled for HTTP, MPTCP stripped);
* inbound reachability from the Internet, which exposes the management-VLAN
  route leak;
* reachability from the student cluster to the switches' management plane —
  the security hole the admins had to fix.

Run with::

    python examples/department_audit.py
"""

from repro import ExecutionSettings, SymbolicExecutor, models
from repro.api import checks as V
from repro.models import tcp_options_metadata
from repro.models.tcp_options import OPTION_MPTCP, OPTION_SACK_OK, option_var
from repro.sefl import InstructionBlock, IpDst, IpSrc, TcpDst, number_to_ip
from repro.workloads import build_department_network

SETTINGS = ExecutionSettings(record_failed_paths=False)


def main() -> None:
    dept = build_department_network(
        access_switches=6, hosts_per_switch=4, mac_entries=1200, extra_routes=100
    )
    print(
        f"department model: {dept.device_count()} devices, "
        f"{dept.port_count()} ports, {dept.mac_entries} MAC entries, "
        f"{dept.route_entries} routes\n"
    )
    executor = SymbolicExecutor(dept.network, settings=SETTINGS)

    # --- office to Internet ---------------------------------------------------
    office_packet = InstructionBlock(
        models.symbolic_tcp_packet({TcpDst: 80}),
        tcp_options_metadata([2, 4, 30]),  # MSS, SACK-permitted, MPTCP
    )
    result = executor.inject(office_packet, *dept.office_entry)
    internet_paths = result.reaching(*dept.internet_exit)
    print("office -> Internet (HTTP):")
    print(f"  paths explored: {len(result.paths)}, reaching the Internet: {len(internet_paths)}")
    path = internet_paths[0]
    print(f"  source address NATted: {not V.field_invariant(path, IpSrc)}")
    print(f"  SACK option after the ASA: {V.field_concrete_value(path, option_var(OPTION_SACK_OK))}")
    print(f"  MPTCP option after the ASA: {V.field_concrete_value(path, option_var(OPTION_MPTCP))}")
    print("  (the ASA's default configuration tampers with TCP options — the\n"
          "   behaviour the department admin did not know about)\n")

    # --- inbound from the Internet ---------------------------------------------
    inbound = executor.inject(models.symbolic_tcp_packet(), *dept.internet_entry)
    leaked = inbound.reaching(*dept.management_exit)
    print("Internet -> department:")
    print(f"  paths explored: {len(inbound.paths)}, successful: {len(inbound.delivered())}")
    print(f"  management VLAN reachable from outside: {bool(leaked)}")
    if leaked:
        value = V.admitted_values(leaked[0], IpDst, samples=1)[0]
        print(f"  example leaked destination: {number_to_ip(value)}")
    print()

    # --- cluster to the management plane ----------------------------------------
    cluster = executor.inject(models.symbolic_tcp_packet(), *dept.cluster_entry)
    hole = cluster.reaching(*dept.management_exit)
    print("cluster -> switch management plane:")
    print(f"  reachable: {bool(hole)}")
    print("  every student with a cluster account can telnet into the switches —")
    print("  the finding the paper reported to the admins (fixed by a static route).")


if __name__ == "__main__":
    main()
