"""Reproduce the Split-TCP middlebox war stories of §8.4 (Figure 10).

Four operational problems from a real enterprise deployment, each verified
statically before (or instead of) painful live debugging:

1. asymmetric routing — do both directions really cross the proxy?
2. MTU black-holing — how large can client packets be once the operator adds
   an IP-in-IP tunnel between the redirection router and the proxy?
3. missing VLAN tagging — the proxy strips the 802.1Q tag and forgets to put
   it back, so the redirection router drops the traffic;
4. the DHCP-lease security appliance — the proxy rewrites source MACs, which
   the exit router's lease check then rejects.

Run with::

    python examples/split_tcp_debugging.py
"""

from repro import ExecutionSettings, SymbolicExecutor, models
from repro.click.elements import build_vlan_encap
from repro.api import checks as V
from repro.sefl import Allocate, Assign, EtherSrc, InstructionBlock, IpLength, IpSrc, mac_to_number
from repro.solver.ast import Const, Eq
from repro.solver.solver import Solver
from repro.workloads import build_split_tcp_network
from repro.workloads.enterprise import CLIENT_MAC

SETTINGS = ExecutionSettings(record_failed_paths=False)


def check_asymmetric_routing() -> None:
    workload = build_split_tcp_network(mirror_at_exit=True)
    result = SymbolicExecutor(workload.network, settings=SETTINGS).inject(
        models.symbolic_tcp_packet(), *workload.client_entry
    )
    returned = result.reaching(*workload.client_return)
    both_ways_via_proxy = all(
        path.visited("P", "in0") and path.visited("P", "in1") for path in returned
    )
    print("1. asymmetric routing check")
    print(f"   return paths found: {len(returned)}")
    print(f"   every direction crosses the proxy: {both_ways_via_proxy}\n")


def check_mtu(with_tunnel: bool) -> int:
    workload = build_split_tcp_network(with_tunnel=with_tunnel)
    result = SymbolicExecutor(workload.network, settings=SETTINGS).inject(
        models.symbolic_tcp_packet(), *workload.client_entry
    )
    path = result.reaching("R2", "out0")[0]
    solver = Solver()
    length = path.state.read_variable(IpLength)
    largest = 0
    for probe in range(1500, 1545):
        if solver.check(list(path.constraints) + [Eq(length, Const(probe))]).is_sat:
            largest = probe
    return largest


def check_vlan_bug() -> None:
    print("3. missing VLAN tagging")
    for buggy in (False, True):
        workload = build_split_tcp_network(use_vlan=True, vlan_bug=buggy)
        tagger = build_vlan_encap("client-vlan", vlan_id=100)
        workload.network.add_element(tagger)
        workload.network.add_link(("client-vlan", "out0"), workload.client_entry)
        result = SymbolicExecutor(workload.network, settings=SETTINGS).inject(
            models.symbolic_tcp_packet(), "client-vlan", "in0"
        )
        reachable = result.is_reachable("R2", "out0")
        label = "proxy forgets to re-tag" if buggy else "proxy restores the tag"
        print(f"   {label:28s}: Internet reachable = {reachable}")
    print()


def check_dhcp_appliance() -> None:
    print("4. DHCP-lease security appliance")

    def client_packet():
        return InstructionBlock(
            models.symbolic_tcp_packet({EtherSrc: mac_to_number(CLIENT_MAC)}),
            Allocate("origIP", 32),
            Assign("origIP", IpSrc),
            Allocate("origEther", 48),
            Assign("origEther", EtherSrc),
        )

    for rewrites in (True, False):
        workload = build_split_tcp_network(
            dhcp_check=True, proxy_rewrites_src_mac=rewrites
        )
        result = SymbolicExecutor(workload.network, settings=SETTINGS).inject(
            client_packet(), *workload.client_entry
        )
        label = "proxy rewrites source MAC" if rewrites else "proxy preserves source MAC"
        print(f"   {label:28s}: Internet reachable = {result.is_reachable('R2', 'out0')}")
    print()


def main() -> None:
    check_asymmetric_routing()

    plain = check_mtu(with_tunnel=False)
    tunneled = check_mtu(with_tunnel=True)
    print("2. MTU black-holing")
    print(f"   largest client packet without tunnel: {plain} bytes")
    print(f"   largest client packet with IP-in-IP:  {tunneled} bytes")
    print(f"   the tunnel silently steals {plain - tunneled} bytes\n")

    check_vlan_bug()
    check_dhcp_appliance()


if __name__ == "__main__":
    main()
