"""Motivating example (§2 of the paper): verify an IP-in-IP tunnel.

A packet is encapsulated twice (E1, E2), crosses an MTU-limited link, and is
decapsulated twice (D2, D1).  We ask the questions Header Space Analysis
cannot answer:

* are the packet contents invariant across the tunnel?
* what do intermediate boxes actually see?
* what is the largest client packet that survives the tunnel MTU?

Run with::

    python examples/tunnel_invariance.py
"""

from repro import Network, SymbolicExecutor, models
from repro.api import checks as V
from repro.models import build_decapsulator, build_encapsulator
from repro.models.tunnel import build_mtu_filter
from repro.sefl import IpDst, IpLength, IpSrc, TcpDst, TcpSrc, number_to_ip
from repro.solver.ast import Const, Eq
from repro.solver.solver import Solver


def main() -> None:
    network = Network("tunnel")
    network.add_elements(
        build_encapsulator("E1", "10.0.0.1", "10.0.0.2"),
        build_encapsulator("E2", "172.16.0.1", "172.16.0.2"),
        build_mtu_filter("core-link", 1536),
        build_decapsulator("D2"),
        build_decapsulator("D1"),
    )
    network.add_link(("E1", "out0"), ("E2", "in0"))
    network.add_link(("E2", "out0"), ("core-link", "in0"))
    network.add_link(("core-link", "out0"), ("D2", "in0"))
    network.add_link(("D2", "out0"), ("D1", "in0"))

    result = SymbolicExecutor(network).inject(models.symbolic_tcp_packet(), "E1", "in0")
    print(f"paths: {result.summary_counts()}")

    # 1. Invariance across the tunnel.
    path = result.reaching("D1", "out0")[0]
    print("\nafter decapsulation (D1 egress):")
    for field in (IpSrc, IpDst, TcpSrc, TcpDst, IpLength):
        print(f"  {field.name:10s} invariant: {V.field_invariant(path, field)}")

    # 2. What the middle of the network sees: the outer header, not the
    #    original addresses.  Re-run reachability up to E2's egress to read
    #    the on-the-wire header there.
    print("\ninside the tunnel the destination address is the tunnel endpoint:")
    outer_probe = Network("outer-probe")
    outer_probe.add_elements(
        build_encapsulator("E1", "10.0.0.1", "10.0.0.2"),
        build_encapsulator("E2", "172.16.0.1", "172.16.0.2"),
    )
    outer_probe.add_link(("E1", "out0"), ("E2", "in0"))
    outer_result = SymbolicExecutor(outer_probe).inject(
        models.symbolic_tcp_packet(), "E1", "in0"
    )
    outer_path = outer_result.reaching("E2", "out0")[0]
    outer_dst = V.field_concrete_value(outer_path, IpDst)
    print(f"  IpDst seen on the wire after E2: {number_to_ip(outer_dst)}")
    print(f"  original IpDst still recoverable: "
          f"{V.field_invariant(path, IpDst)} (after decapsulation)")

    # 3. MTU: the double encapsulation steals 40 bytes from the 1536-byte link.
    solver = Solver()
    length_term = path.state.read_variable(IpLength)
    largest = max(
        value
        for value in (1480, 1496, 1497, 1516, 1536)
        if solver.check(list(path.constraints) + [Eq(length_term, Const(value))]).is_sat
    )
    print(f"\nlargest original packet that fits through the tunnel: {largest} bytes")
    print("(the 1536-byte link minus two 20-byte IP headers)")


if __name__ == "__main__":
    main()
