"""Quickstart: model a small network and run symbolic execution over it.

The scenario is the paper's Figure 4 example extended into a two-box
network: a port-forwarding middlebox in front of an Ethernet switch.  We
inject a fully symbolic TCP packet, look at every execution path, and ask
the classic static-analysis questions: what can reach each port, and how do
the headers look when it gets there?

Run with::

    python examples/quickstart.py
"""

from repro import Network, NetworkElement, SymbolicExecutor, models
from repro.api import checks as V
from repro.models import build_switch
from repro.sefl import (
    Assign,
    Constrain,
    Eq,
    EtherDst,
    Forward,
    If,
    InstructionBlock,
    IpDst,
    TcpDst,
    ip_to_number,
    mac_to_number,
    number_to_ip,
)

SERVER_MAC = mac_to_number("02:00:00:00:00:10")
BACKUP_MAC = mac_to_number("02:00:00:00:00:20")


def build_port_forwarder(name: str) -> NetworkElement:
    """The Figure 4 middlebox: traffic to 141.85.37.1 is accepted; NTP-port
    traffic is redirected to an internal server, everything else passes."""
    element = NetworkElement(name, ["in0"], ["to-server", "to-internet"])
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(Eq(IpDst, ip_to_number("141.85.37.1"))),
            If(
                Eq(TcpDst, 123),
                InstructionBlock(
                    Assign(IpDst, ip_to_number("192.168.1.100")),
                    Assign(TcpDst, 22),
                    Assign(EtherDst, SERVER_MAC),
                    Forward("to-server"),
                ),
                InstructionBlock(Assign(EtherDst, BACKUP_MAC), Forward("to-internet")),
            ),
        ),
    )
    return element


def main() -> None:
    network = Network("quickstart")
    network.add_element(build_port_forwarder("fwd"))
    network.add_element(
        build_switch("sw", {"server-port": [SERVER_MAC], "uplink": [BACKUP_MAC]})
    )
    network.add_link(("fwd", "to-server"), ("sw", "in0"))
    network.add_link(("fwd", "to-internet"), ("sw", "in0"))

    executor = SymbolicExecutor(network)
    result = executor.inject(models.symbolic_tcp_packet(), "fwd", "in0")

    print(f"explored {len(result.paths)} paths "
          f"({result.solver_calls} solver calls, "
          f"{result.elapsed_seconds * 1000:.1f} ms)\n")

    for record in result.delivered():
        dst = V.field_concrete_value(record, IpDst)
        port = V.field_concrete_value(record, TcpDst)
        print(f"path {record.path_id} delivered at {record.last_port}")
        print(f"  visited : {' -> '.join(record.ports_visited)}")
        print(f"  IpDst   : {number_to_ip(dst) if dst is not None else 'symbolic'}")
        print(f"  TcpDst  : {port if port is not None else 'symbolic'}")
        print(f"  TcpDst invariant end-to-end: {V.field_invariant(record, TcpDst)}")
        print()

    # Reachability questions, answered from the same result object.
    print("server port reachable:   ", result.is_reachable("sw", "server-port"))
    print("uplink reachable:        ", result.is_reachable("sw", "uplink"))
    print("failed/filtered paths:   ", len(result.failed()))


if __name__ == "__main__":
    main()
