"""Resident verification service: a session server with streamed answers.

``python -m repro.cli serve`` keeps network models, the worker pool and
the verification store hot across requests, merges compatible concurrent
query batches into one shared plan (two clients asking about the same
injection port share one engine job), and streams each query's answer the
moment its own jobs have reported — bit-identical to a batch run.

This example starts the service in-process on an ephemeral port, then
speaks the line-delimited JSON protocol through the blocking client: one
request scoped to a single port (answered early, while the rest of the
network is still executing) and one whole-network sweep.

Run with::

    python examples/resident_service.py
"""

import asyncio
import json
import queue
import threading

from repro.serve import ServiceClient, VerificationService, run_server

NETWORK = {"workload": "department"}


def start_background_service():
    """The service on its own event-loop thread; returns (host, port, stop)."""
    service = VerificationService(workers=1, batch_window=0.05)
    ready = queue.Queue()
    loop = asyncio.new_event_loop()
    holder = {}

    class ReadyStream:
        def write(self, text):
            ready.put(json.loads(text))

        def flush(self):
            pass

    async def main():
        holder["task"] = asyncio.current_task()
        await run_server(service, port=0, ready_stream=ReadyStream())

    def runner():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    info = ready.get(timeout=60)

    def stop():
        loop.call_soon_threadsafe(holder["task"].cancel)
        thread.join(timeout=60)

    return info["host"], info["port"], stop


def main() -> None:
    host, port, stop = start_background_service()
    print(f"service listening on {host}:{port}\n")
    try:
        with ServiceClient(host, port) as client:
            # One batch mixing a port-scoped question with whole-network
            # sweeps: the scoped answer streams as soon as its one port's
            # job reports, while the other jobs are still executing.
            print("== scoped + whole-network batch, answers streamed")
            for message in client.query(
                NETWORK,
                ["loop(cluster:in-node)", "loop()", "forall_pairs(reach)"],
            ):
                if message["type"] == "result":
                    print(
                        f"  {message['query']} -> holds={message['holds']} "
                        f"(at {message['jobs_reported']}/"
                        f"{message['jobs_total']} jobs)"
                    )

            # A second request over the (now-resident) model: the network
            # is not rebuilt, and with a --store-dir the repeated batch
            # would come straight from the plan cache.
            print("== second request, model already resident")
            for message in client.query(NETWORK, ["invariant(IpSrc)"]):
                if message["type"] == "result":
                    print(f"  {message['query']} -> holds={message['holds']}")
                elif message["type"] == "done":
                    print(f"  done (digest {message['fingerprint'][:16]}...)")

            stats = client.stats()["service"]
            print(
                f"\nresident models: {stats['models_resident']} "
                f"(built {stats['model_builds']}x for "
                f"{stats['plans_executed']} executed plans)"
            )
    finally:
        stop()


if __name__ == "__main__":
    main()
