"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``python setup.py develop`` keeps working in offline environments where
pip cannot download build-isolation dependencies (no ``wheel`` package).
"""

from setuptools import setup

setup()
