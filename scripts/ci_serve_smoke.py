"""CI smoke for the resident verification service.

Starts ``python -m repro.cli serve`` as a real subprocess, connects two
concurrent clients whose requests overlap on the stanford backbone, and
asserts the three load-bearing service properties:

* **streaming before the barrier** — the port-scoped client's answer
  arrives with ``jobs_reported < jobs_total``;
* **fingerprint parity** — every streamed answer is bit-identical to a
  standalone batch ``execute_plan`` of the same queries, and each ``done``
  digest matches the one recomputed from the batch run;
* **cross-client dedup** — both requests merge into one plan
  (``merged_requests == 2``) and the service process executed exactly the
  merged plan's job count of engine runs, not the sum of the two
  requests' (observable through the ``stats`` op with ``--workers 1``);
* **live exposition** — the ``metrics`` op answers with Prometheus text
  whose serve-event counters agree with the run that just happened and
  which carries the core engine families (solver check tiers, job
  latency histogram, degraded operations).
"""

import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.api import NetworkModel, compile_plan, execute_plan, parse_query
from repro.serve import ServiceClient, read_ready_line, results_digest

STANFORD_OPTIONS = dict(zones=4, internal_prefixes_per_zone=30, service_acl_rules=4)
NETWORK = {"workload": "stanford", "options": STANFORD_OPTIONS}
# Client A asks about one zone-edge ACL port (the first of the default
# injection ports in sorted order, so its job reports first); client B
# sweeps the whole network.  Symmetry off on both (the compatibility key
# must match) so the engine-run count is exactly the merged plan's job
# count.
QUERIES_A = ["loop(acl0:in0)"]
QUERIES_B = ["forall_pairs(reach)", "loop()"]


def batch_fingerprints(texts):
    model = NetworkModel.from_workload("stanford", **STANFORD_OPTIONS)
    plan = compile_plan(model, [parse_query(t) for t in texts], symmetry=False)
    result = execute_plan(plan)
    assert not result.job_errors
    return {r.query: r.fingerprint for r in result.results}


def fingerprints_of(messages):
    return {
        m["query"]: m["fingerprint"] for m in messages if m["type"] == "result"
    }


def main():
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--workers", "1", "--batch-window", "0.5",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        ready = read_ready_line(server.stdout)
        print(f"service up on {ready['host']}:{ready['port']}")
        with ServiceClient(ready["host"], ready["port"]) as a, \
                ServiceClient(ready["host"], ready["port"]) as b:
            # Both submissions land inside one batch window and merge.
            id_a = a.submit(NETWORK, QUERIES_A, symmetry=False)
            id_b = b.submit(NETWORK, QUERIES_B, symmetry=False)
            messages_a = a.drain(id_a)
            messages_b = b.drain(id_b)
            stats = a.stats()
            metrics = a.metrics()

        accepted_a = next(m for m in messages_a if m["type"] == "accepted")
        accepted_b = next(m for m in messages_b if m["type"] == "accepted")
        assert accepted_a["merged_requests"] == 2, accepted_a
        assert accepted_b["merged_requests"] == 2, accepted_b
        merged_jobs = accepted_a["jobs"]
        assert merged_jobs == accepted_b["jobs"], (accepted_a, accepted_b)

        # Streaming: A's single-port answer beat the merged plan's barrier.
        result_a = next(m for m in messages_a if m["type"] == "result")
        assert result_a["jobs_reported"] < result_a["jobs_total"], result_a
        print(
            f"client A streamed at {result_a['jobs_reported']}/"
            f"{result_a['jobs_total']} jobs"
        )

        # Parity: streamed answers == standalone batch answers, bit for bit.
        expected_a = batch_fingerprints(QUERIES_A)
        expected_b = batch_fingerprints(QUERIES_B)
        assert fingerprints_of(messages_a) == expected_a, "client A diverged"
        assert fingerprints_of(messages_b) == expected_b, "client B diverged"
        done_a = messages_a[-1]
        done_b = messages_b[-1]
        assert done_a["type"] == "done" and done_b["type"] == "done"
        assert done_a["fingerprint"] == results_digest(expected_a.values())
        assert done_b["fingerprint"] == results_digest(expected_b.values())
        print("fingerprint parity holds for both clients")

        # Dedup: one merged plan, and the service process ran exactly its
        # job count — not len(A's ports) + len(B's ports).
        service = stats["service"]
        engine_runs = stats["execution"]["engine_runs"]
        assert service["groups"] == 1, service
        assert service["merged_requests"] == 2, service
        assert service["plans_executed"] == 1, service
        assert engine_runs == merged_jobs, (engine_runs, merged_jobs)
        print(
            f"dedup: {engine_runs} engine runs for {merged_jobs} merged jobs "
            f"(two requests, one plan)"
        )

        # Exposition: the metrics verb renders the service-local registry
        # (event counters, request-latency histogram) plus the process
        # registry's core engine families.
        assert metrics["type"] == "metrics", metrics
        text = metrics["prometheus"]
        for needle in (
            'repro_serve_events_total{event="requests"} 2',
            'repro_serve_events_total{event="merged_requests"} 2',
            "repro_serve_request_seconds_count 1",
            "repro_solver_checks_total",
            "repro_job_seconds_bucket",
            "repro_degraded_operations_total",
        ):
            assert needle in text, f"metrics text missing {needle!r}"
        assert isinstance(metrics["slow_requests"], list)
        print("metrics verb exposes serve counters + core engine families")
    finally:
        server.terminate()
        server.wait(timeout=30)
    print("serve smoke OK")


if __name__ == "__main__":
    main()
